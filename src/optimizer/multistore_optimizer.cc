#include "optimizer/multistore_optimizer.h"

#include <algorithm>
#include <bit>
#include <optional>

#include "common/hash.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "verify/plan_verifier.h"
#include "verify/verify_gate.h"

namespace miso::optimizer {

using plan::NodePtr;
using plan::OpKind;

namespace {

/// Depth of what-if probing on this thread. The tuner's benefit analyzer
/// costs thousands of hypothetical designs per reorg through the very
/// same `Optimize` path as real queries; without this guard every probe
/// would emit an `optimizer.plan_choice` trace line and drown the
/// decisions the trace exists to explain. Counters still count probes —
/// their totals are deterministic either way.
thread_local int t_whatif_depth = 0;

struct WhatIfScope {
  WhatIfScope() { ++t_whatif_depth; }
  ~WhatIfScope() { --t_whatif_depth; }
};

/// Batch size for parallel candidate costing. One `CostSplit` is a few
/// microseconds of tree-walking — far below the cost of scheduling a pool
/// task — so candidates are costed in batches: a typical query's whole
/// candidate list (tens of splits) runs inline, and only genuinely large
/// enumerations fan out. docs/PERFORMANCE.md records the calibration.
constexpr ParallelForOptions kCostingBatch{/*grain=*/16};

/// Structural identity of a (possibly rewritten) plan tree for the
/// `WhatIfSession` memo. Covers, per node, every field the split
/// enumerator and the cost models read — operator kind, the canonical
/// subexpression signature, output stats, DW-executability, the ViewScan
/// content signature and store, UDF cost parameters, and the filter
/// selectivity the DW index-pruning rule applies — recursively over the
/// children in order. Two trees with equal hashes therefore cost
/// identically in every split, so a memoized best-split total transfers
/// exactly (modulo 64-bit collisions, the `WhatIfCache::Fingerprint`
/// contract this repo already relies on).
uint64_t StructuralPlanHash(const NodePtr& node) {
  uint64_t h = HashCombine(static_cast<uint64_t>(node->kind()),
                           node->signature());
  h = HashCombine(h, static_cast<uint64_t>(node->stats().rows));
  h = HashCombine(h, static_cast<uint64_t>(node->stats().bytes));
  h = HashCombine(h, node->dw_executable() ? 1 : 0);
  switch (node->kind()) {
    case OpKind::kViewScan:
      h = HashCombine(h, node->view_scan().view_signature);
      h = HashCombine(h, static_cast<uint64_t>(node->view_scan().store));
      break;
    case OpKind::kUdf:
      h = HashCombine(h, std::bit_cast<uint64_t>(node->udf().cpu_factor));
      h = HashCombine(h, std::bit_cast<uint64_t>(node->udf().size_factor));
      h = HashCombine(h,
                      std::bit_cast<uint64_t>(node->udf().row_selectivity));
      break;
    case OpKind::kFilter:
      h = HashCombine(h, std::bit_cast<uint64_t>(
                             node->filter().predicate.Selectivity()));
      break;
    default:
      break;
  }
  for (const NodePtr& child : node->children()) {
    h = HashCombine(h, StructuralPlanHash(child));
  }
  return h;
}

/// The five-part cost anatomy of Fig. 3 — HV prefix, dump, network
/// transfer, DW load, DW suffix. `CostBreakdown` folds network+load into
/// one `transfer_load_s` figure; the transfer model's `TransferBreakdown`
/// recovers the split from the plan's working-set size.
void AddAnatomyFields(obs::TraceEvent& event, const MultistorePlan& plan,
                      const transfer::TransferModel& transfer_model) {
  const transfer::TransferBreakdown tb =
      transfer_model.WorkingSetTransfer(plan.transferred_bytes);
  event.Int("dw_ops", static_cast<int64_t>(plan.dw_side.size()))
      .Int("cut_inputs", static_cast<int64_t>(plan.cut_inputs.size()))
      .Int("transferred_bytes", static_cast<int64_t>(plan.transferred_bytes))
      .Double("hv_exec_s", plan.cost.hv_exec_s)
      .Double("dump_s", tb.dump_s)
      .Double("transfer_s", tb.network_s)
      .Double("load_s", tb.load_s)
      .Double("dw_exec_s", plan.cost.dw_exec_s)
      .Double("total_s", plan.cost.Total());
}

}  // namespace

Result<MultistorePlan> MultistoreOptimizer::CostSplit(
    const plan::Plan& executed, const SplitCandidate& split) const {
  return CostSplit(executed, split, /*hv_costs=*/nullptr);
}

Result<MultistorePlan> MultistoreOptimizer::CostSplit(
    const plan::Plan& executed, const SplitCandidate& split,
    const HvSubtreeCosts* hv_costs) const {
  // The same cut subtree heads many candidates of one enumeration, and its
  // HV cost is a pure function of the immutable subtree; when the caller
  // precomputed the shared memo, look the Result up instead of re-walking.
  const auto subtree_cost = [&](const NodePtr& node) -> Result<Seconds> {
    if (hv_costs != nullptr) {
      const auto it = hv_costs->find(node.get());
      if (it != hv_costs->end()) return it->second;
    }
    return hv_model_->SubtreeCost(node);
  };

  MultistorePlan ms;
  ms.executed = executed;
  ms.dw_side = split.dw_side;
  ms.cut_inputs = split.cut_inputs;

  // HV side: each cut input heads an HV-executed subtree; when the DW side
  // is empty the whole plan runs in HV.
  if (split.dw_side.empty()) {
    MISO_ASSIGN_OR_RETURN(Seconds hv_cost, subtree_cost(executed.root()));
    ms.cost.hv_exec_s = hv_cost;
    return ms;
  }

  for (const NodePtr& cut : split.cut_inputs) {
    ms.transferred_bytes += cut->stats().bytes;
    if (cut->kind() == OpKind::kScan || cut->kind() == OpKind::kViewScan) {
      // A bare Scan / HV ViewScan cut input does no computation, but
      // exporting HDFS-resident data still runs a map-only Hadoop job
      // (startup + task-wave floor + the read itself). This is exactly
      // why placing a view in DW beats dumping it on demand every query.
      const hv::HvConfig& hv_config = hv_model_->config();
      const Seconds read =
          static_cast<double>(cut->stats().bytes) /
          hv_config.ClusterRate(hv_config.inter_read_mbps);
      ms.cost.hv_exec_s += hv_config.job_startup_s +
                           std::max(read, hv_config.job_min_work_s);
    } else {
      MISO_ASSIGN_OR_RETURN(Seconds hv_cost, subtree_cost(cut));
      ms.cost.hv_exec_s += hv_cost;
    }
  }

  const transfer::TransferBreakdown tb =
      transfer_model_->WorkingSetTransfer(ms.transferred_bytes);
  ms.cost.dump_s = tb.dump_s;
  ms.cost.transfer_load_s = tb.network_s + tb.load_s;

  std::unordered_set<const plan::OperatorNode*> dw_set = ms.DwSideSet();
  std::unordered_set<const plan::OperatorNode*> temp_inputs;
  for (const NodePtr& cut : split.cut_inputs) temp_inputs.insert(cut.get());
  MISO_ASSIGN_OR_RETURN(Seconds dw_cost,
                        dw_model_->CostDwSide(dw_set, temp_inputs));
  ms.cost.dw_exec_s = dw_cost;
  return ms;
}

MultistoreOptimizer::HvSubtreeCosts
MultistoreOptimizer::PrecomputeHvSubtreeCosts(
    const plan::Plan& executed,
    const std::vector<SplitCandidate>& candidates) const {
  HvSubtreeCosts costs;
  for (const SplitCandidate& split : candidates) {
    if (split.dw_side.empty()) {
      if (costs.find(executed.root().get()) == costs.end()) {
        costs.emplace(executed.root().get(),
                      hv_model_->SubtreeCost(executed.root()));
      }
      continue;
    }
    for (const NodePtr& cut : split.cut_inputs) {
      // Leaf cut inputs (Scan / ViewScan) use the map-only export formula
      // in CostSplit, not SubtreeCost — skip them here too.
      if (cut->kind() == OpKind::kScan || cut->kind() == OpKind::kViewScan) {
        continue;
      }
      if (costs.find(cut.get()) == costs.end()) {
        costs.emplace(cut.get(), hv_model_->SubtreeCost(cut));
      }
    }
  }
  return costs;
}

Result<MultistorePlan> MultistoreOptimizer::BestSplit(
    const plan::Plan& executed) const {
  MISO_ASSIGN_OR_RETURN(std::vector<SplitCandidate> candidates,
                        EnumerateSplits(executed.root(),
                                        /*max_candidates=*/100000, pool_));
  // One SubtreeCost per distinct cut subtree, shared by every candidate it
  // heads (dedup of pure recomputation — each stored Result is exactly what
  // the per-candidate walk would produce).
  const HvSubtreeCosts hv_costs =
      PrecomputeHvSubtreeCosts(executed, candidates);
  // Cost every candidate into its own slot (independent work over
  // immutable inputs), then reduce serially in candidate order: the
  // strict < keeps the earliest minimum, and errors surface for the
  // lowest-indexed failing candidate — both exactly as the serial loop.
  std::vector<Result<MultistorePlan>> costed(
      candidates.size(), Status::Internal("candidate not costed"));
  ParallelFor(
      pool_, static_cast<int>(candidates.size()),
      [&](int i) {
        costed[static_cast<size_t>(i)] = CostSplit(
            executed, candidates[static_cast<size_t>(i)], &hv_costs);
      },
      kCostingBatch);
  if (obs::MetricsOn()) {
    obs::Metrics()
        .GetCounter(obs::names::kCandidatesCosted)
        ->Add(static_cast<int64_t>(costed.size()));
  }
  Result<MultistorePlan> best =
      Status::Internal("no candidate produced a costable plan");
  for (Result<MultistorePlan>& candidate : costed) {
    if (!candidate.ok()) return candidate.status();
    if (!best.ok() || candidate->cost.Total() < best->cost.Total()) {
      best = std::move(candidate);
    }
  }
  return best;
}

Result<MultistorePlan> MultistoreOptimizer::Optimize(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views) const {
  return Optimize(query, dw_views, hv_views, OptimizeOptions{});
}

Result<MultistorePlan> MultistoreOptimizer::Optimize(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views, const OptimizeOptions& options) const {
  // Graceful degradation under a DW outage: no DW views, no split — the
  // whole query runs in HV, still exploiting HV-resident views.
  if (!options.dw_available) {
    return OptimizeHvOnly(query, hv_views, /*use_views=*/true);
  }
  Result<MultistorePlan> best =
      Status::Internal("optimizer produced no plan");

  // Rewrite variants, strongest first. A DW-view rewrite can be split-
  // infeasible (DW view below an HV-only UDF); later variants always admit
  // at least the HV-only split.
  views::RewriteReport report;
  Result<plan::Plan> with_both =
      rewriter_.Rewrite(query, dw_views, hv_views, &report);
  MISO_RETURN_IF_ERROR(with_both.status());
  // DW-views-only: a shallow HV match can shadow deeper DW matches in the
  // combined rewrite (the rewriter replaces the largest subtree first), so
  // the DW-only rewrite exposes plans that run deeper inside the DW.
  Result<plan::Plan> with_dw = rewriter_.RewriteSingleStore(
      query, dw_views, StoreKind::kDw, /*report=*/nullptr);
  MISO_RETURN_IF_ERROR(with_dw.status());
  Result<plan::Plan> with_hv = rewriter_.RewriteSingleStore(
      query, hv_views, StoreKind::kHv, /*report=*/nullptr);
  MISO_RETURN_IF_ERROR(with_hv.status());

  // Rewrites preserve canonical identity, so signatures cannot distinguish
  // the variants — but a rewrite that changed nothing hands back the
  // query's own root node, so pointer-equal roots are the same tree and
  // would yield byte-identical BestSplit results. Skipping them keeps the
  // first occurrence, which the strict-< reduce would keep anyway.
  const plan::Plan* all_variants[4] = {&with_both.value(), &with_dw.value(),
                                       &with_hv.value(), &query};
  const plan::Plan* variants[4];
  int num_variants = 0;
  for (const plan::Plan* variant : all_variants) {
    bool duplicate = false;
    for (int i = 0; i < num_variants; ++i) {
      duplicate = duplicate || variants[i]->root().get() ==
                                   variant->root().get();
    }
    if (!duplicate) variants[num_variants++] = variant;
  }

  for (int v = 0; v < num_variants; ++v) {
    const plan::Plan* variant = variants[v];
    Result<MultistorePlan> candidate = BestSplit(*variant);
    if (!candidate.ok()) {
      if (candidate.status().code() == StatusCode::kFailedPrecondition) {
        continue;  // this rewrite admits no feasible split
      }
      return candidate.status();
    }
    if (!best.ok() || candidate->cost.Total() < best->cost.Total()) {
      best = std::move(candidate);
    }
  }
  // Debug-mode assertion: the winning plan must verify, including every
  // ViewScan resolving in the catalog of the store it claims (the split
  // enumerator already verified each candidate's shape).
  if (best.ok() && verify::Enabled()) {
    verify::PlanVerifierOptions options;
    options.hv_views = &hv_views;
    options.dw_views = &dw_views;
    MISO_RETURN_IF_ERROR(verify::VerifyMultistorePlan(*best, options));
  }
  // Serial point: Optimize runs on the calling thread (only candidate
  // costing fans out above), so emission here is deterministic.
  if (best.ok()) {
    if (obs::MetricsOn()) {
      obs::MetricsRegistry& registry = obs::Metrics();
      registry.GetCounter(obs::names::kOptimizeCalls)->Increment();
      // Like the plan_choice trace line below, the histogram skips what-if
      // probes: probes may execute on pool workers (the tuner's Prewarm
      // fan-out), and a histogram's floating-point sum is only
      // deterministic when observed serially. Counters commute, so
      // optimize_calls/whatif_probes stay probe-inclusive.
      if (t_whatif_depth == 0) {
        registry
            .GetHistogram(obs::names::kChosenPlanSeconds,
                          obs::SecondsBuckets())
            ->Observe(best->cost.Total());
      }
    }
    if (obs::TraceOn() && t_whatif_depth == 0) {
      obs::TraceEvent event(obs::names::kEvPlanChoice);
      event.Bool("hv_only", best->HvOnly());
      AddAnatomyFields(event, *best, *transfer_model_);
      obs::Emit(event);
    }
  }
  return best;
}

Result<MultistorePlan> MultistoreOptimizer::OptimizeHvOnly(
    const plan::Plan& query, const views::ViewCatalog& hv_views,
    bool use_views) const {
  plan::Plan executed = query;
  if (use_views) {
    MISO_ASSIGN_OR_RETURN(
        executed, rewriter_.RewriteSingleStore(query, hv_views, StoreKind::kHv,
                                               /*report=*/nullptr));
  }
  SplitCandidate hv_only;  // empty DW side
  Result<MultistorePlan> costed = CostSplit(executed, hv_only);
  if (costed.ok() && verify::Enabled()) {
    verify::PlanVerifierOptions options;
    options.hv_views = &hv_views;
    MISO_RETURN_IF_ERROR(verify::VerifyMultistorePlan(*costed, options));
  }
  return costed;
}

Result<std::vector<MultistorePlan>> MultistoreOptimizer::EnumerateAllPlans(
    const plan::Plan& query) const {
  MISO_ASSIGN_OR_RETURN(std::vector<SplitCandidate> candidates,
                        EnumerateSplits(query.root(),
                                        /*max_candidates=*/100000, pool_));
  const HvSubtreeCosts hv_costs = PrecomputeHvSubtreeCosts(query, candidates);
  // Per-candidate costing + verification is independent; slots keep the
  // enumeration order, so the returned population is bit-identical to
  // the serial path for any thread count.
  std::vector<Result<MultistorePlan>> costed(
      candidates.size(), Status::Internal("candidate not costed"));
  ParallelFor(
      pool_, static_cast<int>(candidates.size()),
      [&](int i) {
        Result<MultistorePlan> one = CostSplit(
            query, candidates[static_cast<size_t>(i)], &hv_costs);
        if (one.ok() && verify::Enabled()) {
          const Status verdict = verify::VerifyMultistorePlan(*one);
          if (!verdict.ok()) one = verdict;
        }
        costed[static_cast<size_t>(i)] = std::move(one);
      },
      kCostingBatch);
  if (obs::MetricsOn()) {
    obs::Metrics()
        .GetCounter(obs::names::kCandidatesCosted)
        ->Add(static_cast<int64_t>(costed.size()));
  }
  std::vector<MultistorePlan> plans;
  plans.reserve(costed.size());
  for (Result<MultistorePlan>& one : costed) {
    if (!one.ok()) return one.status();
    plans.push_back(std::move(*one));
  }
  // The per-plan trace behind Fig. 3: one `plan_costed` line per feasible
  // split, emitted from this serial merge loop in enumeration order.
  if (obs::TraceOn() && t_whatif_depth == 0) {
    for (size_t i = 0; i < plans.size(); ++i) {
      obs::TraceEvent event(obs::names::kEvPlanCosted);
      event.Int("index", static_cast<int64_t>(i));
      event.Double("dw_fraction", plans[i].DwOperatorFraction());
      AddAnatomyFields(event, plans[i], *transfer_model_);
      obs::Emit(event);
    }
  }
  return plans;
}

Result<Seconds> MultistoreOptimizer::WhatIfCost(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views) const {
  WhatIfScope probe;  // suppress per-probe plan_choice trace lines
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kWhatIfProbes)->Increment();
  }
  MISO_ASSIGN_OR_RETURN(MultistorePlan best,
                        Optimize(query, dw_views, hv_views));
  return best.cost.Total();
}

Result<Seconds> MultistoreOptimizer::SessionBestSplitTotal(
    const plan::Plan& executed, WhatIfSession* session) const {
  const uint64_t key = StructuralPlanHash(executed.root());
  MutexLock lock(session->mu_);
  const auto it = session->best_split_totals_.find(key);
  if (it != session->best_split_totals_.end()) return it->second;
  // Solve under the lock: each key is enumerated and costed exactly once
  // per session regardless of thread count, so the optimizer's costing
  // counters stay deterministic. Deadlock-free: a worker holding the lock
  // runs BestSplit's nested ParallelFor inline (pool nesting detection),
  // and a non-worker caller never holds the lock while waiting on pool
  // futures it could starve — other probes merely queue behind the lock.
  Result<MultistorePlan> best = BestSplit(executed);
  const Result<Seconds> total = best.ok() ? Result<Seconds>(best->cost.Total())
                                          : Result<Seconds>(best.status());
  // Sessions may be tuner-lifetime (a long-running server re-tunes
  // indefinitely); bound the memo by resetting when full — always safe for
  // a pure memo, and one reorg's worth of distinct variants is hundreds.
  if (session->best_split_totals_.size() >= WhatIfSession::kMaxEntries) {
    session->best_split_totals_.clear();
  }
  session->best_split_totals_.emplace(key, total);
  return total;
}

Result<Seconds> MultistoreOptimizer::WhatIfCost(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views,
    WhatIfSession* session) const {
  // The verified path re-checks every winning probe plan against the probe
  // catalogs; a memo hit has no plan to verify, so verification builds use
  // the plain path (and get the plain path's exact behavior).
  if (session == nullptr || verify::Enabled()) {
    return WhatIfCost(query, dw_views, hv_views);
  }
  WhatIfScope probe;  // suppress per-probe plan_choice trace lines
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kWhatIfProbes)->Increment();
  }
  // Probe-level memo: the answer is a pure function of (query tree, DW
  // catalog content, HV catalog content), so a repeat probe — typical
  // across successive tuning passes sharing window and candidates — skips
  // even the rewrites.
  const uint64_t probe_key = HashCombine(
      query.signature(), HashCombine(dw_views.ContentFingerprint(),
                                     hv_views.ContentFingerprint()));
  {
    MutexLock lock(session->mu_);
    const auto it = session->probe_totals_.find(probe_key);
    if (it != session->probe_totals_.end()) return it->second;
  }
  // Same variant set and reduction as Optimize; only the total of each
  // variant's best split is needed, and that total is a pure function of
  // the variant tree, so each resolves through the session memo. Variants
  // provably identical to another are skipped before even rewriting:
  //  - an empty catalog never matches (`TryStore` finds nothing), so its
  //    single-store rewrite is the bare query, and the combined rewrite
  //    collapses to the other store's single-store rewrite;
  //  - `TryStore`'s choice is a function of (node, catalog) only — the
  //    store argument just tags the spliced ViewScan — so with the *same*
  //    catalog on both stores the combined rewrite (DW preferred at every
  //    node) picks exactly the DW-only rewrite's matches.
  // What-if probes hit these shapes constantly (a hypothetical design is
  // the same candidate set in one or both stores); Optimize keeps the full
  // four-variant evaluation, whose winner must carry a concrete plan.
  const bool dw_empty = dw_views.empty();
  const bool hv_empty = hv_views.empty();
  std::optional<plan::Plan> with_both;
  std::optional<plan::Plan> with_dw;
  std::optional<plan::Plan> with_hv;
  if (!dw_empty) {
    MISO_ASSIGN_OR_RETURN(
        with_dw, rewriter_.RewriteSingleStore(query, dw_views, StoreKind::kDw,
                                              /*report=*/nullptr));
  }
  if (!hv_empty) {
    MISO_ASSIGN_OR_RETURN(
        with_hv, rewriter_.RewriteSingleStore(query, hv_views, StoreKind::kHv,
                                              /*report=*/nullptr));
  }
  if (!dw_empty && !hv_empty && &dw_views != &hv_views) {
    MISO_ASSIGN_OR_RETURN(
        with_both, rewriter_.Rewrite(query, dw_views, hv_views,
                                     /*report=*/nullptr));
  }
  const plan::Plan* all_variants[4] = {
      with_both.has_value() ? &*with_both : nullptr,
      with_dw.has_value() ? &*with_dw : nullptr,
      with_hv.has_value() ? &*with_hv : nullptr, &query};
  const plan::Plan* variants[4];
  int num_variants = 0;
  for (const plan::Plan* variant : all_variants) {
    if (variant == nullptr) continue;
    bool duplicate = false;
    for (int i = 0; i < num_variants; ++i) {
      duplicate = duplicate || variants[i]->root().get() ==
                                   variant->root().get();
    }
    if (!duplicate) variants[num_variants++] = variant;
  }
  Result<Seconds> best = Status::Internal("optimizer produced no plan");
  for (int v = 0; v < num_variants; ++v) {
    Result<Seconds> total = SessionBestSplitTotal(*variants[v], session);
    if (!total.ok()) {
      if (total.status().code() == StatusCode::kFailedPrecondition) {
        continue;  // this rewrite admits no feasible split
      }
      // Hard errors propagate unmemoized: they abort the tuning pass
      // anyway, and memoizing only complete answers keeps the probe map
      // trivially consistent.
      return total.status();
    }
    if (!best.ok() || *total < *best) best = total;
  }
  {
    MutexLock lock(session->mu_);
    if (session->probe_totals_.size() >= WhatIfSession::kMaxEntries) {
      session->probe_totals_.clear();
    }
    session->probe_totals_.emplace(probe_key, best);
  }
  return best;
}

}  // namespace miso::optimizer
