#include "optimizer/multistore_optimizer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "verify/plan_verifier.h"
#include "verify/verify_gate.h"

namespace miso::optimizer {

using plan::NodePtr;
using plan::OpKind;

namespace {

/// Depth of what-if probing on this thread. The tuner's benefit analyzer
/// costs thousands of hypothetical designs per reorg through the very
/// same `Optimize` path as real queries; without this guard every probe
/// would emit an `optimizer.plan_choice` trace line and drown the
/// decisions the trace exists to explain. Counters still count probes —
/// their totals are deterministic either way.
thread_local int t_whatif_depth = 0;

struct WhatIfScope {
  WhatIfScope() { ++t_whatif_depth; }
  ~WhatIfScope() { --t_whatif_depth; }
};

/// The five-part cost anatomy of Fig. 3 — HV prefix, dump, network
/// transfer, DW load, DW suffix. `CostBreakdown` folds network+load into
/// one `transfer_load_s` figure; the transfer model's `TransferBreakdown`
/// recovers the split from the plan's working-set size.
void AddAnatomyFields(obs::TraceEvent& event, const MultistorePlan& plan,
                      const transfer::TransferModel& transfer_model) {
  const transfer::TransferBreakdown tb =
      transfer_model.WorkingSetTransfer(plan.transferred_bytes);
  event.Int("dw_ops", static_cast<int64_t>(plan.dw_side.size()))
      .Int("cut_inputs", static_cast<int64_t>(plan.cut_inputs.size()))
      .Int("transferred_bytes", static_cast<int64_t>(plan.transferred_bytes))
      .Double("hv_exec_s", plan.cost.hv_exec_s)
      .Double("dump_s", tb.dump_s)
      .Double("transfer_s", tb.network_s)
      .Double("load_s", tb.load_s)
      .Double("dw_exec_s", plan.cost.dw_exec_s)
      .Double("total_s", plan.cost.Total());
}

}  // namespace

Result<MultistorePlan> MultistoreOptimizer::CostSplit(
    const plan::Plan& executed, const SplitCandidate& split) const {
  MultistorePlan ms;
  ms.executed = executed;
  ms.dw_side = split.dw_side;
  ms.cut_inputs = split.cut_inputs;

  // HV side: each cut input heads an HV-executed subtree; when the DW side
  // is empty the whole plan runs in HV.
  if (split.dw_side.empty()) {
    MISO_ASSIGN_OR_RETURN(Seconds hv_cost,
                          hv_model_->SubtreeCost(executed.root()));
    ms.cost.hv_exec_s = hv_cost;
    return ms;
  }

  for (const NodePtr& cut : split.cut_inputs) {
    ms.transferred_bytes += cut->stats().bytes;
    if (cut->kind() == OpKind::kScan || cut->kind() == OpKind::kViewScan) {
      // A bare Scan / HV ViewScan cut input does no computation, but
      // exporting HDFS-resident data still runs a map-only Hadoop job
      // (startup + task-wave floor + the read itself). This is exactly
      // why placing a view in DW beats dumping it on demand every query.
      const hv::HvConfig& hv_config = hv_model_->config();
      const Seconds read =
          static_cast<double>(cut->stats().bytes) /
          hv_config.ClusterRate(hv_config.inter_read_mbps);
      ms.cost.hv_exec_s += hv_config.job_startup_s +
                           std::max(read, hv_config.job_min_work_s);
    } else {
      MISO_ASSIGN_OR_RETURN(Seconds hv_cost, hv_model_->SubtreeCost(cut));
      ms.cost.hv_exec_s += hv_cost;
    }
  }

  const transfer::TransferBreakdown tb =
      transfer_model_->WorkingSetTransfer(ms.transferred_bytes);
  ms.cost.dump_s = tb.dump_s;
  ms.cost.transfer_load_s = tb.network_s + tb.load_s;

  std::unordered_set<const plan::OperatorNode*> dw_set = ms.DwSideSet();
  std::unordered_set<const plan::OperatorNode*> temp_inputs;
  for (const NodePtr& cut : split.cut_inputs) temp_inputs.insert(cut.get());
  MISO_ASSIGN_OR_RETURN(Seconds dw_cost,
                        dw_model_->CostDwSide(dw_set, temp_inputs));
  ms.cost.dw_exec_s = dw_cost;
  return ms;
}

Result<MultistorePlan> MultistoreOptimizer::BestSplit(
    const plan::Plan& executed) const {
  MISO_ASSIGN_OR_RETURN(std::vector<SplitCandidate> candidates,
                        EnumerateSplits(executed.root(),
                                        /*max_candidates=*/100000, pool_));
  // Cost every candidate into its own slot (independent work over
  // immutable inputs), then reduce serially in candidate order: the
  // strict < keeps the earliest minimum, and errors surface for the
  // lowest-indexed failing candidate — both exactly as the serial loop.
  std::vector<Result<MultistorePlan>> costed(
      candidates.size(), Status::Internal("candidate not costed"));
  ParallelFor(pool_, static_cast<int>(candidates.size()), [&](int i) {
    costed[static_cast<size_t>(i)] =
        CostSplit(executed, candidates[static_cast<size_t>(i)]);
  });
  if (obs::MetricsOn()) {
    obs::Metrics()
        .GetCounter(obs::names::kCandidatesCosted)
        ->Add(static_cast<int64_t>(costed.size()));
  }
  Result<MultistorePlan> best =
      Status::Internal("no candidate produced a costable plan");
  for (Result<MultistorePlan>& candidate : costed) {
    if (!candidate.ok()) return candidate.status();
    if (!best.ok() || candidate->cost.Total() < best->cost.Total()) {
      best = std::move(candidate);
    }
  }
  return best;
}

Result<MultistorePlan> MultistoreOptimizer::Optimize(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views) const {
  return Optimize(query, dw_views, hv_views, OptimizeOptions{});
}

Result<MultistorePlan> MultistoreOptimizer::Optimize(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views, const OptimizeOptions& options) const {
  // Graceful degradation under a DW outage: no DW views, no split — the
  // whole query runs in HV, still exploiting HV-resident views.
  if (!options.dw_available) {
    return OptimizeHvOnly(query, hv_views, /*use_views=*/true);
  }
  Result<MultistorePlan> best =
      Status::Internal("optimizer produced no plan");

  // Rewrite variants, strongest first. A DW-view rewrite can be split-
  // infeasible (DW view below an HV-only UDF); later variants always admit
  // at least the HV-only split.
  views::RewriteReport report;
  Result<plan::Plan> with_both =
      rewriter_.Rewrite(query, dw_views, hv_views, &report);
  MISO_RETURN_IF_ERROR(with_both.status());
  // DW-views-only: a shallow HV match can shadow deeper DW matches in the
  // combined rewrite (the rewriter replaces the largest subtree first), so
  // the DW-only rewrite exposes plans that run deeper inside the DW.
  Result<plan::Plan> with_dw = rewriter_.RewriteSingleStore(
      query, dw_views, StoreKind::kDw, /*report=*/nullptr);
  MISO_RETURN_IF_ERROR(with_dw.status());
  Result<plan::Plan> with_hv = rewriter_.RewriteSingleStore(
      query, hv_views, StoreKind::kHv, /*report=*/nullptr);
  MISO_RETURN_IF_ERROR(with_hv.status());

  // Rewrites preserve canonical identity, so structural dedup is not
  // possible by signature; costing a duplicate variant is cheap, so all
  // four are always evaluated.
  std::vector<const plan::Plan*> variants = {
      &with_both.value(), &with_dw.value(), &with_hv.value(), &query};

  for (const plan::Plan* variant : variants) {
    Result<MultistorePlan> candidate = BestSplit(*variant);
    if (!candidate.ok()) {
      if (candidate.status().code() == StatusCode::kFailedPrecondition) {
        continue;  // this rewrite admits no feasible split
      }
      return candidate.status();
    }
    if (!best.ok() || candidate->cost.Total() < best->cost.Total()) {
      best = std::move(candidate);
    }
  }
  // Debug-mode assertion: the winning plan must verify, including every
  // ViewScan resolving in the catalog of the store it claims (the split
  // enumerator already verified each candidate's shape).
  if (best.ok() && verify::Enabled()) {
    verify::PlanVerifierOptions options;
    options.hv_views = &hv_views;
    options.dw_views = &dw_views;
    MISO_RETURN_IF_ERROR(verify::VerifyMultistorePlan(*best, options));
  }
  // Serial point: Optimize runs on the calling thread (only candidate
  // costing fans out above), so emission here is deterministic.
  if (best.ok()) {
    if (obs::MetricsOn()) {
      obs::MetricsRegistry& registry = obs::Metrics();
      registry.GetCounter(obs::names::kOptimizeCalls)->Increment();
      // Like the plan_choice trace line below, the histogram skips what-if
      // probes: probes may execute on pool workers (the tuner's Prewarm
      // fan-out), and a histogram's floating-point sum is only
      // deterministic when observed serially. Counters commute, so
      // optimize_calls/whatif_probes stay probe-inclusive.
      if (t_whatif_depth == 0) {
        registry
            .GetHistogram(obs::names::kChosenPlanSeconds,
                          obs::SecondsBuckets())
            ->Observe(best->cost.Total());
      }
    }
    if (obs::TraceOn() && t_whatif_depth == 0) {
      obs::TraceEvent event(obs::names::kEvPlanChoice);
      event.Bool("hv_only", best->HvOnly());
      AddAnatomyFields(event, *best, *transfer_model_);
      obs::Emit(event);
    }
  }
  return best;
}

Result<MultistorePlan> MultistoreOptimizer::OptimizeHvOnly(
    const plan::Plan& query, const views::ViewCatalog& hv_views,
    bool use_views) const {
  plan::Plan executed = query;
  if (use_views) {
    MISO_ASSIGN_OR_RETURN(
        executed, rewriter_.RewriteSingleStore(query, hv_views, StoreKind::kHv,
                                               /*report=*/nullptr));
  }
  SplitCandidate hv_only;  // empty DW side
  Result<MultistorePlan> costed = CostSplit(executed, hv_only);
  if (costed.ok() && verify::Enabled()) {
    verify::PlanVerifierOptions options;
    options.hv_views = &hv_views;
    MISO_RETURN_IF_ERROR(verify::VerifyMultistorePlan(*costed, options));
  }
  return costed;
}

Result<std::vector<MultistorePlan>> MultistoreOptimizer::EnumerateAllPlans(
    const plan::Plan& query) const {
  MISO_ASSIGN_OR_RETURN(std::vector<SplitCandidate> candidates,
                        EnumerateSplits(query.root(),
                                        /*max_candidates=*/100000, pool_));
  // Per-candidate costing + verification is independent; slots keep the
  // enumeration order, so the returned population is bit-identical to
  // the serial path for any thread count.
  std::vector<Result<MultistorePlan>> costed(
      candidates.size(), Status::Internal("candidate not costed"));
  ParallelFor(pool_, static_cast<int>(candidates.size()), [&](int i) {
    Result<MultistorePlan> one =
        CostSplit(query, candidates[static_cast<size_t>(i)]);
    if (one.ok() && verify::Enabled()) {
      const Status verdict = verify::VerifyMultistorePlan(*one);
      if (!verdict.ok()) one = verdict;
    }
    costed[static_cast<size_t>(i)] = std::move(one);
  });
  if (obs::MetricsOn()) {
    obs::Metrics()
        .GetCounter(obs::names::kCandidatesCosted)
        ->Add(static_cast<int64_t>(costed.size()));
  }
  std::vector<MultistorePlan> plans;
  plans.reserve(costed.size());
  for (Result<MultistorePlan>& one : costed) {
    if (!one.ok()) return one.status();
    plans.push_back(std::move(*one));
  }
  // The per-plan trace behind Fig. 3: one `plan_costed` line per feasible
  // split, emitted from this serial merge loop in enumeration order.
  if (obs::TraceOn() && t_whatif_depth == 0) {
    for (size_t i = 0; i < plans.size(); ++i) {
      obs::TraceEvent event(obs::names::kEvPlanCosted);
      event.Int("index", static_cast<int64_t>(i));
      event.Double("dw_fraction", plans[i].DwOperatorFraction());
      AddAnatomyFields(event, plans[i], *transfer_model_);
      obs::Emit(event);
    }
  }
  return plans;
}

Result<Seconds> MultistoreOptimizer::WhatIfCost(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views) const {
  WhatIfScope probe;  // suppress per-probe plan_choice trace lines
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kWhatIfProbes)->Increment();
  }
  MISO_ASSIGN_OR_RETURN(MultistorePlan best,
                        Optimize(query, dw_views, hv_views));
  return best.cost.Total();
}

}  // namespace miso::optimizer
