#ifndef MISO_OPTIMIZER_WHATIF_CACHE_H_
#define MISO_OPTIMIZER_WHATIF_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/units.h"
#include "dw/dw_config.h"
#include "hv/hv_config.h"
#include "plan/plan.h"
#include "transfer/transfer_model.h"
#include "views/view.h"

namespace miso::optimizer {

/// The subset of a query plan's structure that determines which views the
/// rewriter can ever splice into it: every original node's signature (the
/// `FindExact` probes) and, for every Filter node, its child's signature
/// (the `FindByBase` probes). Rewriting is top-down over original nodes
/// only — spliced ViewScans are never re-probed — so a view outside both
/// sets can never appear in any rewrite of the query, and therefore can
/// never change its what-if cost.
struct QueryShape {
  uint64_t signature = 0;
  std::unordered_set<uint64_t> node_signatures;
  std::unordered_set<uint64_t> filter_base_signatures;

  static QueryShape Of(const plan::Plan& query);

  /// True when `view` could participate in some rewrite of this query.
  /// Over-approximate (the predicate-implication check is skipped), which
  /// is the safe direction: a relevant-looking view that the rewriter then
  /// rejects only widens the cache key, never aliases distinct designs.
  bool Relevant(const views::View& view) const;

  /// True when any view in `set` is Relevant.
  bool AnyRelevant(const std::vector<views::View>& set) const;
};

/// Cache key of one what-if probe: the query identity plus a fingerprint
/// of the relevant view subset per store. Hypothetical catalogs that
/// differ only in irrelevant views map to the same key.
struct WhatIfKey {
  uint64_t query_signature = 0;
  uint64_t dw_fingerprint = 0;
  uint64_t hv_fingerprint = 0;

  bool operator==(const WhatIfKey& other) const {
    return query_signature == other.query_signature &&
           dw_fingerprint == other.dw_fingerprint &&
           hv_fingerprint == other.hv_fingerprint;
  }
};

struct WhatIfKeyHash {
  std::size_t operator()(const WhatIfKey& key) const;
};

/// Byte-bounded LRU cache of what-if probe costs, persistent across
/// reorganizations (the simulator owns one per run and shares it with
/// every `Tune` call).
///
/// Entries are stamped with a cost-model epoch (`SetEpoch`, derived from
/// every cost-model knob via `EpochOf`): changing any knob invalidates the
/// whole cache wholesale — stale entries are dropped lazily on lookup.
///
/// Determinism: the cache is only mutated from serial tuner code (probe
/// fan-out computes costs into private slots and inserts afterwards, in
/// order — see BenefitAnalyzer::Prewarm), so hits/misses/evictions and the
/// resident set are identical for every `MISO_THREADS`. The internal mutex
/// merely makes concurrent *reads* by embedders safe; it is not what the
/// determinism contract rests on.
class WhatIfCache {
 public:
  /// Approximate resident cost of one entry (key + cost + LRU/index
  /// bookkeeping), used for the byte bound. Exposed so tests can size
  /// `max_bytes` to an exact entry capacity.
  static constexpr Bytes kEntryBytes = 128;

  static constexpr Bytes kDefaultMaxBytes = 64 * kMiB;

  explicit WhatIfCache(Bytes max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  WhatIfCache(const WhatIfCache&) = delete;
  WhatIfCache& operator=(const WhatIfCache&) = delete;

  /// Fingerprint of the views in `set` that are relevant to `shape`,
  /// order-independent. Each relevant view contributes everything its
  /// rewrite could expose to the cost model — signature, base signature,
  /// predicate, size, and output stats — but *not* its id: ids are
  /// assigned per materialization and never affect cost, and excluding
  /// them is what lets a re-harvested view hit the entries its previous
  /// incarnation warmed.
  static uint64_t Fingerprint(const QueryShape& shape,
                              const std::vector<views::View>& set);

  /// Fingerprint of the empty view set (the base-cost probes).
  static uint64_t EmptyFingerprint();

  /// Epoch value covering every cost-model knob that can change a what-if
  /// cost. Any difference in any field yields (modulo hashing) a different
  /// epoch.
  static uint64_t EpochOf(const hv::HvConfig& hv, const dw::DwConfig& dw,
                          const transfer::TransferConfig& transfer);

  /// Declares the current cost-model epoch. Entries stamped with a
  /// different epoch are invalid and are dropped lazily on lookup.
  void SetEpoch(uint64_t epoch);
  uint64_t epoch() const;

  /// Returns the cached cost and refreshes the entry's LRU position, or
  /// nullopt (counting a miss) when absent or stale.
  std::optional<Seconds> Lookup(const WhatIfKey& key);

  /// Inserts (or overwrites) `key` at the current epoch, then evicts from
  /// the LRU tail while over the byte bound. The newest entry is never
  /// evicted, so a bound smaller than one entry degrades to capacity 1.
  void Insert(const WhatIfKey& key, Seconds cost);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    Bytes bytes = 0;
  };
  Stats GetStats() const;

  Bytes max_bytes() const { return max_bytes_; }

  void Clear();

 private:
  struct Entry {
    WhatIfKey key;
    Seconds cost = 0;
    uint64_t epoch = 0;
  };

  mutable Mutex mutex_;
  Bytes max_bytes_;
  uint64_t epoch_ MISO_GUARDED_BY(mutex_) = 0;
  // front = most recently used
  std::list<Entry> lru_ MISO_GUARDED_BY(mutex_);
  std::unordered_map<WhatIfKey, std::list<Entry>::iterator, WhatIfKeyHash>
      index_ MISO_GUARDED_BY(mutex_);
  int64_t hits_ MISO_GUARDED_BY(mutex_) = 0;
  int64_t misses_ MISO_GUARDED_BY(mutex_) = 0;
  int64_t evictions_ MISO_GUARDED_BY(mutex_) = 0;
};

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_WHATIF_CACHE_H_
