#include "optimizer/explain.h"

#include <cstdio>
#include <unordered_set>

#include "plan/printer.h"

namespace miso::optimizer {

namespace {

using plan::NodePtr;

void AppendNode(const NodePtr& node,
                const std::unordered_set<const plan::OperatorNode*>& dw_side,
                const std::unordered_set<const plan::OperatorNode*>& cuts,
                int depth, std::string* out) {
  if (node == nullptr) return;
  const bool in_dw = dw_side.count(node.get()) > 0;
  out->append(in_dw ? "  [DW] " : "  [HV] ");
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(plan::DescribeNode(*node));
  out->push_back('\n');
  if (cuts.count(node.get()) > 0) {
    // This subtree's output migrates to DW at the split.
    out->append("  [HV] ");
    out->append(static_cast<size_t>(depth) * 2, ' ');
    char buf[96];
    std::snprintf(buf, sizeof(buf), ">>> migrate %s to DW >>>\n",
                  FormatBytes(node->stats().bytes).c_str());
    out->append(buf);
  }
  for (const NodePtr& child : node->children()) {
    AppendNode(child, dw_side, cuts, depth + 1, out);
  }
}

}  // namespace

std::string ExplainMultistorePlan(const MultistorePlan& plan) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "Multistore plan for '%s' (total %.1f s):\n",
                plan.executed.query_name().c_str(), plan.cost.Total());
  std::string out = head;

  std::unordered_set<const plan::OperatorNode*> dw_side = plan.DwSideSet();
  std::unordered_set<const plan::OperatorNode*> cuts;
  for (const NodePtr& cut : plan.cut_inputs) cuts.insert(cut.get());
  AppendNode(plan.executed.root(), dw_side, cuts, 0, &out);

  char tail[192];
  std::snprintf(tail, sizeof(tail),
                "  components: HV %.1f s | dump %.1f s | transfer+load "
                "%.1f s | DW %.1f s%s\n",
                plan.cost.hv_exec_s, plan.cost.dump_s,
                plan.cost.transfer_load_s, plan.cost.dw_exec_s,
                plan.FullyDw() ? " | runs entirely in DW"
                               : (plan.HvOnly() ? " | runs entirely in HV"
                                                : ""));
  out.append(tail);
  return out;
}

}  // namespace miso::optimizer
