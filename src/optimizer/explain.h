#ifndef MISO_OPTIMIZER_EXPLAIN_H_
#define MISO_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "optimizer/multistore_plan.h"

namespace miso::optimizer {

/// Renders a chosen multistore plan the way EXPLAIN would in a real
/// system: the operator tree annotated with the executing store, the cut
/// (working-set migration) points, the views read, and the cost
/// breakdown. Example:
///
///   Multistore plan for 'A1v2' (total 243 s):
///     [DW] Aggregate keys=[region,kind] ...
///     [DW]   Join key=checkin_loc ...
///     [DW]     ViewScan view=... (resident in DW)
///     [HV]     >>> migrate 1.65 MiB >>>
///     [HV]     Filter (kind = ...) ...
///     [HV]       Extract ...
///     [HV]         Scan landmarks ...
///   components: HV 209 s | dump 3 s | transfer+load 30 s | DW 1.4 s
std::string ExplainMultistorePlan(const MultistorePlan& plan);

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_EXPLAIN_H_
