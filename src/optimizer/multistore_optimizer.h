#ifndef MISO_OPTIMIZER_MULTISTORE_OPTIMIZER_H_
#define MISO_OPTIMIZER_MULTISTORE_OPTIMIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "dw/dw_cost_model.h"
#include "hv/hv_cost_model.h"
#include "optimizer/multistore_plan.h"
#include "optimizer/split_enumerator.h"
#include "transfer/transfer_model.h"
#include "views/rewriter.h"
#include "views/view_catalog.h"

namespace miso::optimizer {

/// Per-call planning context. `dw_available = false` models a DW outage:
/// the optimizer degrades gracefully, re-planning the query as the best
/// HV-only split (HV views still usable) instead of erroring — queries
/// keep completing, just slower, and the degradation shows up in the
/// per-query cost anatomy rather than as a failure.
struct OptimizeOptions {
  bool dw_available = true;
};

/// Two-level memo shared by what-if probes, owned by the prober (the
/// tuner keeps one for its lifetime; a standalone `BenefitAnalyzer` keeps
/// a private one). Both levels are pure content-keyed memos, so entries
/// never need invalidation while the optimizer (and hence its cost
/// models) stays fixed:
///
///  1. *Probe* level — the probe's answer keyed by (query signature, DW
///     catalog content fingerprint, HV catalog content fingerprint). A
///     repeat probe skips everything, including the rewrites. Distinct
///     probes within one cold tuning pass rarely repeat (the analyzer's
///     own layers already dedup those), but successive reorganizations
///     re-probe mostly the same (query, candidate-set) combinations.
///  2. *Variant* level — best-split totals keyed by a structural hash of
///     each *rewritten* plan variant. Probes with different probe keys
///     still share most of their rewrite variants — the bare query recurs
///     in every probe of that query, and a single-store rewrite recurs
///     across every placement that splices the same views into the same
///     positions — so this level retires the bulk of a cold pass's
///     enumeration and costing work.
///
/// Exactness: a best-split total is a pure function of the variant's tree
/// (immutable nodes, const cost models), and the structural hash covers
/// every field the enumerator and the cost models read (kind, per-node
/// canonical signature, stats, DW-executability, ViewScan store/content,
/// UDF and filter cost parameters); the probe key relies on the same
/// content-identity contract as `WhatIfCache::Fingerprint` (equal catalog
/// contents rewrite and cost identically).
///
/// Threading: safe for concurrent probes (the tuner's `Prewarm` fan-out).
/// A variant-level miss holds the lock across the solve, so each variant
/// is solved exactly once per session regardless of `MISO_THREADS` —
/// keeping the optimizer's split/candidate counters deterministic — at
/// the price of serializing concurrent misses. Probe-level entries are
/// only written after the answer is complete; concurrent same-key probes
/// are already deduped by the analyzer's job dedup.
class WhatIfSession {
 public:
  WhatIfSession() = default;
  WhatIfSession(const WhatIfSession&) = delete;
  WhatIfSession& operator=(const WhatIfSession&) = delete;

 private:
  friend class MultistoreOptimizer;

  /// Memo size bound for long-lived (tuner-lifetime) sessions; reaching it
  /// resets the memo (always safe — entries are pure recomputables). One
  /// tuning pass creates a few hundred distinct variants, so the bound
  /// spans many reorganizations while capping memory at a few MiB.
  static constexpr std::size_t kMaxEntries = 1 << 16;

  Mutex mu_;
  std::unordered_map<uint64_t, Result<Seconds>> probe_totals_
      MISO_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Result<Seconds>> best_split_totals_
      MISO_GUARDED_BY(mu_);
};

/// The multistore query optimizer (paper §3.1). Given a query and the
/// current (or hypothetical) multistore design, it:
///
///  1. generates candidate rewrites — using both stores' views (DW
///     preferred), using HV views only, and using no views (the rewrite
///     with DW views may admit no feasible split when a DW view sits below
///     an HV-only UDF, hence the fallbacks);
///  2. enumerates the feasible splits of each rewrite;
///  3. costs every (rewrite, split) pair with the store cost models plus
///     the transfer model, in common units (seconds);
///  4. returns the cheapest.
///
/// The same code path serves as the what-if optimizer: pass hypothetical
/// view catalogs to cost a design without materializing it (§3.1's
/// "what-if mode").
///
/// Candidate evaluation (step 3) optionally fans out over a `ThreadPool`
/// (`set_thread_pool`): every (rewrite, split) pair costs independently
/// against the immutable plan nodes and const cost models, each result
/// lands in its own slot, and the winner is reduced serially in candidate
/// order with the same strict-< comparison as the serial loop — so the
/// chosen plan and its costs are bit-identical for every thread count.
class MultistoreOptimizer {
 public:
  MultistoreOptimizer(const plan::NodeFactory* factory,
                      const hv::HvCostModel* hv_model,
                      const dw::DwCostModel* dw_model,
                      const transfer::TransferModel* transfer_model)
      : rewriter_(factory),
        hv_model_(hv_model),
        dw_model_(dw_model),
        transfer_model_(transfer_model) {}

  /// Best multistore plan for `query` under the design (dw_views,
  /// hv_views).
  Result<MultistorePlan> Optimize(const plan::Plan& query,
                                  const views::ViewCatalog& dw_views,
                                  const views::ViewCatalog& hv_views) const;

  /// As above, under explicit planning context (e.g. DW outage).
  Result<MultistorePlan> Optimize(const plan::Plan& query,
                                  const views::ViewCatalog& dw_views,
                                  const views::ViewCatalog& hv_views,
                                  const OptimizeOptions& options) const;

  /// Best HV-confined plan (no split). `use_views` selects whether HV
  /// views may be used (HV-OP variant) or not (plain HV-ONLY).
  Result<MultistorePlan> OptimizeHvOnly(const plan::Plan& query,
                                        const views::ViewCatalog& hv_views,
                                        bool use_views) const;

  /// Every feasible (rewrite-free) split of `query`, costed — the plan
  /// population behind Figure 3.
  Result<std::vector<MultistorePlan>> EnumerateAllPlans(
      const plan::Plan& query) const;

  /// What-if interface: total cost of the best plan under a hypothetical
  /// design (paper: cost(q, M)).
  Result<Seconds> WhatIfCost(const plan::Plan& query,
                             const views::ViewCatalog& dw_views,
                             const views::ViewCatalog& hv_views) const;

  /// As above, with a per-tuning-pass `WhatIfSession` memoizing best-split
  /// totals across probes. Returns exactly what the session-free overload
  /// returns — the memo only changes how much enumeration and costing the
  /// answer costs. Falls back to the plain path when `session` is null or
  /// verification is enabled (the verified path re-checks every winning
  /// probe plan, which a memo hit would skip).
  Result<Seconds> WhatIfCost(const plan::Plan& query,
                             const views::ViewCatalog& dw_views,
                             const views::ViewCatalog& hv_views,
                             WhatIfSession* session) const;

  /// Costs one concrete (rewritten plan, split) pair.
  Result<MultistorePlan> CostSplit(const plan::Plan& executed,
                                   const SplitCandidate& split) const;

  /// Installs (or clears, with nullptr) the pool used to cost candidate
  /// splits concurrently. The pool is borrowed, not owned; it must
  /// outlive every Optimize/WhatIfCost call.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

 private:
  /// Memo of HV-side subtree costs shared by the candidates of one
  /// enumeration: the same cut subtree heads the HV side of many splits,
  /// and its cost is a pure function of the immutable subtree.
  using HvSubtreeCosts =
      std::unordered_map<const plan::OperatorNode*, Result<Seconds>>;

  /// Enumerates and costs all splits of `executed`, returning the
  /// cheapest; error when no feasible split exists.
  Result<MultistorePlan> BestSplit(const plan::Plan& executed) const;

  /// `CostSplit` with the shared-subtree memo; public 2-arg `CostSplit`
  /// passes null (compute directly).
  Result<MultistorePlan> CostSplit(const plan::Plan& executed,
                                   const SplitCandidate& split,
                                   const HvSubtreeCosts* hv_costs) const;

  /// One `SubtreeCost` per distinct non-leaf cut subtree (plus the plan
  /// root when some candidate is HV-only), computed serially in candidate
  /// order before the costing fan-out. Dedup only — every stored Result is
  /// one the serial path would compute for some candidate.
  HvSubtreeCosts PrecomputeHvSubtreeCosts(
      const plan::Plan& executed,
      const std::vector<SplitCandidate>& candidates) const;

  /// Best-split total of one rewrite variant through `session`'s memo
  /// (exactly-once per structural key).
  Result<Seconds> SessionBestSplitTotal(const plan::Plan& executed,
                                        WhatIfSession* session) const;

  views::Rewriter rewriter_;
  const hv::HvCostModel* hv_model_;
  const dw::DwCostModel* dw_model_;
  const transfer::TransferModel* transfer_model_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_MULTISTORE_OPTIMIZER_H_
