#ifndef MISO_OPTIMIZER_MULTISTORE_OPTIMIZER_H_
#define MISO_OPTIMIZER_MULTISTORE_OPTIMIZER_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dw/dw_cost_model.h"
#include "hv/hv_cost_model.h"
#include "optimizer/multistore_plan.h"
#include "optimizer/split_enumerator.h"
#include "transfer/transfer_model.h"
#include "views/rewriter.h"
#include "views/view_catalog.h"

namespace miso::optimizer {

/// Per-call planning context. `dw_available = false` models a DW outage:
/// the optimizer degrades gracefully, re-planning the query as the best
/// HV-only split (HV views still usable) instead of erroring — queries
/// keep completing, just slower, and the degradation shows up in the
/// per-query cost anatomy rather than as a failure.
struct OptimizeOptions {
  bool dw_available = true;
};

/// The multistore query optimizer (paper §3.1). Given a query and the
/// current (or hypothetical) multistore design, it:
///
///  1. generates candidate rewrites — using both stores' views (DW
///     preferred), using HV views only, and using no views (the rewrite
///     with DW views may admit no feasible split when a DW view sits below
///     an HV-only UDF, hence the fallbacks);
///  2. enumerates the feasible splits of each rewrite;
///  3. costs every (rewrite, split) pair with the store cost models plus
///     the transfer model, in common units (seconds);
///  4. returns the cheapest.
///
/// The same code path serves as the what-if optimizer: pass hypothetical
/// view catalogs to cost a design without materializing it (§3.1's
/// "what-if mode").
///
/// Candidate evaluation (step 3) optionally fans out over a `ThreadPool`
/// (`set_thread_pool`): every (rewrite, split) pair costs independently
/// against the immutable plan nodes and const cost models, each result
/// lands in its own slot, and the winner is reduced serially in candidate
/// order with the same strict-< comparison as the serial loop — so the
/// chosen plan and its costs are bit-identical for every thread count.
class MultistoreOptimizer {
 public:
  MultistoreOptimizer(const plan::NodeFactory* factory,
                      const hv::HvCostModel* hv_model,
                      const dw::DwCostModel* dw_model,
                      const transfer::TransferModel* transfer_model)
      : rewriter_(factory),
        hv_model_(hv_model),
        dw_model_(dw_model),
        transfer_model_(transfer_model) {}

  /// Best multistore plan for `query` under the design (dw_views,
  /// hv_views).
  Result<MultistorePlan> Optimize(const plan::Plan& query,
                                  const views::ViewCatalog& dw_views,
                                  const views::ViewCatalog& hv_views) const;

  /// As above, under explicit planning context (e.g. DW outage).
  Result<MultistorePlan> Optimize(const plan::Plan& query,
                                  const views::ViewCatalog& dw_views,
                                  const views::ViewCatalog& hv_views,
                                  const OptimizeOptions& options) const;

  /// Best HV-confined plan (no split). `use_views` selects whether HV
  /// views may be used (HV-OP variant) or not (plain HV-ONLY).
  Result<MultistorePlan> OptimizeHvOnly(const plan::Plan& query,
                                        const views::ViewCatalog& hv_views,
                                        bool use_views) const;

  /// Every feasible (rewrite-free) split of `query`, costed — the plan
  /// population behind Figure 3.
  Result<std::vector<MultistorePlan>> EnumerateAllPlans(
      const plan::Plan& query) const;

  /// What-if interface: total cost of the best plan under a hypothetical
  /// design (paper: cost(q, M)).
  Result<Seconds> WhatIfCost(const plan::Plan& query,
                             const views::ViewCatalog& dw_views,
                             const views::ViewCatalog& hv_views) const;

  /// Costs one concrete (rewritten plan, split) pair.
  Result<MultistorePlan> CostSplit(const plan::Plan& executed,
                                   const SplitCandidate& split) const;

  /// Installs (or clears, with nullptr) the pool used to cost candidate
  /// splits concurrently. The pool is borrowed, not owned; it must
  /// outlive every Optimize/WhatIfCost call.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

 private:
  /// Enumerates and costs all splits of `executed`, returning the
  /// cheapest; error when no feasible split exists.
  Result<MultistorePlan> BestSplit(const plan::Plan& executed) const;

  views::Rewriter rewriter_;
  const hv::HvCostModel* hv_model_;
  const dw::DwCostModel* dw_model_;
  const transfer::TransferModel* transfer_model_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_MULTISTORE_OPTIMIZER_H_
