#ifndef MISO_OPTIMIZER_MULTISTORE_PLAN_H_
#define MISO_OPTIMIZER_MULTISTORE_PLAN_H_

#include <unordered_set>
#include <vector>

#include "common/units.h"
#include "plan/plan.h"

namespace miso::optimizer {

/// Execution-time breakdown of one multistore plan, matching Figure 3's
/// stacked components: HV execution, DUMP of the working set, TRANSFER +
/// LOAD into DW temp space, and DW execution.
struct CostBreakdown {
  Seconds hv_exec_s = 0;
  Seconds dump_s = 0;
  Seconds transfer_load_s = 0;
  Seconds dw_exec_s = 0;

  Seconds Total() const {
    return hv_exec_s + dump_s + transfer_load_s + dw_exec_s;
  }
};

/// One concrete multistore execution strategy for a query: a (possibly
/// view-rewritten) plan plus a split — an upward-closed set of operators
/// delegated to the DW, with the working sets crossing the cut migrated
/// from HV to DW (§3.1). `dw_side` empty means an HV-only execution;
/// `cut_inputs` empty with a non-empty `dw_side` means the query runs
/// entirely in DW from resident views.
struct MultistorePlan {
  plan::Plan executed;

  /// Operators executed in DW (upward-closed under the parent relation).
  std::vector<plan::NodePtr> dw_side;

  /// HV-side subtree roots whose outputs are dumped / transferred / loaded
  /// into DW temporary space at the split.
  std::vector<plan::NodePtr> cut_inputs;

  /// Total working-set bytes migrated at the split.
  Bytes transferred_bytes = 0;

  CostBreakdown cost;

  bool HvOnly() const { return dw_side.empty(); }
  bool FullyDw() const { return !dw_side.empty() && cut_inputs.empty(); }

  /// Fraction of operators executed in DW (Figure 6's split ratios).
  double DwOperatorFraction() const {
    const int total = static_cast<int>(executed.PostOrder().size());
    return total == 0 ? 0.0
                      : static_cast<double>(dw_side.size()) /
                            static_cast<double>(total);
  }

  /// Pointer-identity set of the DW-side nodes.
  std::unordered_set<const plan::OperatorNode*> DwSideSet() const {
    std::unordered_set<const plan::OperatorNode*> set;
    for (const plan::NodePtr& node : dw_side) set.insert(node.get());
    return set;
  }
};

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_MULTISTORE_PLAN_H_
