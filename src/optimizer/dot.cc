#include "optimizer/dot.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "plan/printer.h"

namespace miso::optimizer {

namespace {

using plan::NodePtr;

/// Escapes the characters DOT treats specially inside double-quoted
/// labels.
std::string EscapeLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Assigns stable node ids (post-order index) for one plan.
std::unordered_map<const plan::OperatorNode*, int> NumberNodes(
    const plan::Plan& p) {
  std::unordered_map<const plan::OperatorNode*, int> ids;
  int next = 0;
  for (const NodePtr& node : p.PostOrder()) ids.emplace(node.get(), next++);
  return ids;
}

void AppendNodesAndEdges(
    const plan::Plan& p,
    const std::unordered_map<const plan::OperatorNode*, int>& ids,
    const std::unordered_set<const plan::OperatorNode*>& dw_side,
    const std::unordered_set<const plan::OperatorNode*>& cuts,
    std::string* out) {
  char buf[512];
  for (const NodePtr& node : p.PostOrder()) {
    const int id = ids.at(node.get());
    const bool in_dw = dw_side.count(node.get()) > 0;
    std::snprintf(buf, sizeof(buf),
                  "  n%d [label=\"%s\"%s];\n", id,
                  EscapeLabel(plan::DescribeNode(*node)).c_str(),
                  in_dw ? ", style=filled, fillcolor=lightblue" : "");
    out->append(buf);
  }
  for (const NodePtr& node : p.PostOrder()) {
    for (const NodePtr& child : node->children()) {
      const bool cut_edge = cuts.count(child.get()) > 0 &&
                            dw_side.count(node.get()) > 0;
      if (cut_edge) {
        std::snprintf(buf, sizeof(buf),
                      "  n%d -> n%d [color=red, penwidth=2, "
                      "label=\"migrate %s\"];\n",
                      ids.at(child.get()), ids.at(node.get()),
                      FormatBytes(child->stats().bytes).c_str());
      } else {
        std::snprintf(buf, sizeof(buf), "  n%d -> n%d;\n",
                      ids.at(child.get()), ids.at(node.get()));
      }
      out->append(buf);
    }
  }
}

}  // namespace

std::string PlanToDot(const plan::Plan& p) {
  std::string out = "digraph \"" + EscapeLabel(p.query_name()) + "\" {\n";
  out += "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  AppendNodesAndEdges(p, NumberNodes(p), {}, {}, &out);
  out += "}\n";
  return out;
}

std::string MultistorePlanToDot(const MultistorePlan& ms) {
  std::string out = "digraph \"" +
                    EscapeLabel(ms.executed.query_name()) + "\" {\n";
  out += "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  std::unordered_set<const plan::OperatorNode*> cuts;
  for (const NodePtr& cut : ms.cut_inputs) cuts.insert(cut.get());
  AppendNodesAndEdges(ms.executed, NumberNodes(ms.executed), ms.DwSideSet(),
                      cuts, &out);
  char total[96];
  std::snprintf(total, sizeof(total),
                "  label=\"total %.1f s (blue = DW side)\";\n",
                ms.cost.Total());
  out += total;
  out += "}\n";
  return out;
}

}  // namespace miso::optimizer
