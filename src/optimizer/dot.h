#ifndef MISO_OPTIMIZER_DOT_H_
#define MISO_OPTIMIZER_DOT_H_

#include <string>

#include "optimizer/multistore_plan.h"
#include "plan/plan.h"

namespace miso::optimizer {

/// Graphviz (DOT) rendering of a logical plan: one box per operator,
/// labelled with its salient parameters and estimated output; edges run
/// child -> parent in dataflow direction. Pipe through `dot -Tsvg` to
/// visualize.
std::string PlanToDot(const plan::Plan& plan);

/// DOT rendering of a chosen multistore execution: DW-side operators are
/// filled, and cut edges (working-set migrations) are highlighted and
/// annotated with the migrated byte volume.
std::string MultistorePlanToDot(const MultistorePlan& plan);

}  // namespace miso::optimizer

#endif  // MISO_OPTIMIZER_DOT_H_
