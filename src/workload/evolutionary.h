#ifndef MISO_WORKLOAD_EVOLUTIONARY_H_
#define MISO_WORKLOAD_EVOLUTIONARY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "workload/query_spec.h"

namespace miso::workload {

/// Which combination of log sources an analyst works with.
enum class AnalystSources {
  kTwitterFoursquareLandmarks,  // 3-source: two joins
  kTwitterFoursquare,           // 2-source: one join
  kFoursquareLandmarks,         // 2-source: one join
};

/// How a query version mutates the previous one. The kinds follow the
/// mutation taxonomy of the evolutionary-analytics workload the paper
/// uses: analysts refine predicates, swap reference data, change
/// aggregations, and occasionally widen the extracted schema.
enum class MutationKind {
  kBase,             // v1
  kRefineReference,  // new landmarks region/kind filter + new aggregation
  kTightenPredicate, // extra conjuncts on a source filter (subsumable)
  kChangeAggregate,  // new group-by keys / aggregate functions only
  kWidenSchema,      // extra extracted field (invalidates extraction views)
};

std::string_view MutationKindToString(MutationKind kind);

/// Generation knobs. Defaults reproduce the paper's workload shape:
/// 8 analysts x 4 versions = 32 queries, arriving phase-interleaved
/// (all v1's, then all v2's, ...), per-analyst UDFs with a mix of
/// DW-compatible and HV-only scoring functions.
struct WorkloadConfig {
  int num_analysts = 8;
  int versions_per_analyst = 4;
  uint64_t seed = 42;
  /// Phase-interleaved arrival (A1v1..A8v1, A1v2..A8v2, ...) when true;
  /// analyst-major (A1v1..A1v4, A2v1..) when false.
  bool interleave = true;
};

/// One generated workload query with its provenance.
struct WorkloadQuery {
  QuerySpec spec;
  plan::Plan plan;
  int analyst = 0;
  int version = 0;
  MutationKind mutation = MutationKind::kBase;
};

/// Generator of the synthetic evolutionary-analytics workload. Fully
/// deterministic given the seed.
class EvolutionaryWorkload {
 public:
  static Result<EvolutionaryWorkload> Generate(
      const relation::Catalog* catalog, const WorkloadConfig& config);

  const std::vector<WorkloadQuery>& queries() const { return queries_; }
  int size() const { return static_cast<int>(queries_.size()); }

  /// Plans only, in arrival order (convenience for the simulator).
  std::vector<plan::Plan> Plans() const;

 private:
  std::vector<WorkloadQuery> queries_;
};

}  // namespace miso::workload

#endif  // MISO_WORKLOAD_EVOLUTIONARY_H_
