#ifndef MISO_WORKLOAD_BACKGROUND_H_
#define MISO_WORKLOAD_BACKGROUND_H_

#include "dw/resource_model.h"

namespace miso::workload {

/// DW background reporting workloads of §5.4, built by continuously
/// executing parameterized instances of an IO-intensive TPC-DS query (q3)
/// or a CPU-intensive one (q83) so that a fixed fraction of the cluster's
/// IO or CPU remains spare.

/// One q3 stream: 60 % IO consumed, 40 % spare IO.
dw::BackgroundWorkload SpareIo40();
/// Three q3 streams: 80 % IO consumed, 20 % spare IO.
dw::BackgroundWorkload SpareIo20();
/// Two q83 streams: 60 % CPU consumed, 40 % spare CPU.
dw::BackgroundWorkload SpareCpu40();
/// Three q83 streams: 80 % CPU consumed, 20 % spare CPU.
dw::BackgroundWorkload SpareCpu20();

/// No background workload (an idle DW).
dw::BackgroundWorkload IdleDw();

}  // namespace miso::workload

#endif  // MISO_WORKLOAD_BACKGROUND_H_
