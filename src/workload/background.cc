#include "workload/background.h"

namespace miso::workload {

namespace {

dw::BackgroundWorkload Make(double io, double cpu) {
  dw::BackgroundWorkload bg;
  bg.io_demand = io;
  bg.cpu_demand = cpu;
  bg.base_query_latency_s = 1.06;  // measured q3 latency in the paper
  return bg;
}

}  // namespace

dw::BackgroundWorkload SpareIo40() { return Make(0.60, 0.20); }
dw::BackgroundWorkload SpareIo20() { return Make(0.80, 0.30); }
dw::BackgroundWorkload SpareCpu40() { return Make(0.15, 0.60); }
dw::BackgroundWorkload SpareCpu20() { return Make(0.25, 0.80); }

dw::BackgroundWorkload IdleDw() {
  dw::BackgroundWorkload bg = Make(0.0, 0.0);
  return bg;
}

}  // namespace miso::workload
