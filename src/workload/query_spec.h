#ifndef MISO_WORKLOAD_QUERY_SPEC_H_
#define MISO_WORKLOAD_QUERY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/builder.h"
#include "plan/plan.h"
#include "relation/catalog.h"

namespace miso::workload {

/// One filter conjunct of a query spec.
struct FilterSpec {
  std::string field;
  plan::CompareOp op = plan::CompareOp::kEq;
  std::string operand;
  double selectivity = 1.0;
};

/// One log source of a query: scan + SerDe extraction + filters.
struct SourceSpec {
  std::string dataset;
  std::vector<std::string> fields;
  std::vector<FilterSpec> filters;
};

/// A UDF stage of a query.
struct UdfSpec {
  bool present = false;
  std::string name;
  double size_factor = 1.0;
  double row_selectivity = 1.0;
  double cpu_factor = 1.0;
  bool dw_compatible = false;
};

/// Declarative description of one analyst query, mirroring the structure
/// of the evolutionary-analytics workload (LeFevre et al., DanaC 2013)
/// the paper evaluates on: two or three log sources, one or two equi-joins,
/// per-analyst UDFs, and a final aggregation.
///
///   left ----+
///            Join(join1_key) -- [udf1] --+
///   right ---+                           Join(join2_key) -- [udf2] -- Agg
///   third (optional) --------------------+
///
/// With no `third` source, udf2 (if present) applies directly above udf1.
struct QuerySpec {
  std::string name;  // e.g. "A3v2"
  int analyst = 0;
  int version = 0;

  SourceSpec left;
  SourceSpec right;
  std::optional<SourceSpec> third;

  std::string join1_key;
  std::string join2_key;  // used only when `third` is set

  UdfSpec udf1;
  UdfSpec udf2;

  std::vector<std::string> group_by;
  std::vector<plan::AggregateFn> aggregates;
};

/// Materializes a spec into an annotated plan.
Result<plan::Plan> BuildQueryFromSpec(const relation::Catalog* catalog,
                                      const QuerySpec& spec);

}  // namespace miso::workload

#endif  // MISO_WORKLOAD_QUERY_SPEC_H_
