#include "workload/query_spec.h"

namespace miso::workload {

namespace {

plan::PlanBuilder::Fragment BuildSource(const plan::PlanBuilder& builder,
                                        const SourceSpec& source) {
  plan::PlanBuilder::Fragment fragment =
      builder.Scan(source.dataset).Extract(source.fields);
  if (!source.filters.empty()) {
    std::vector<plan::PredicateAtom> atoms;
    atoms.reserve(source.filters.size());
    for (const FilterSpec& f : source.filters) {
      atoms.push_back(
          plan::MakeAtom(f.field, f.op, f.operand, f.selectivity));
    }
    fragment = fragment.Filter(std::move(atoms));
  }
  return fragment;
}

plan::UdfParams ToUdfParams(const UdfSpec& spec) {
  plan::UdfParams params;
  params.name = spec.name;
  params.size_factor = spec.size_factor;
  params.row_selectivity = spec.row_selectivity;
  params.cpu_factor = spec.cpu_factor;
  params.dw_compatible = spec.dw_compatible;
  return params;
}

}  // namespace

Result<plan::Plan> BuildQueryFromSpec(const relation::Catalog* catalog,
                                      const QuerySpec& spec) {
  plan::PlanBuilder builder(catalog);

  plan::PlanBuilder::Fragment left = BuildSource(builder, spec.left);
  plan::PlanBuilder::Fragment right = BuildSource(builder, spec.right);
  plan::PlanBuilder::Fragment current = left.Join(right, spec.join1_key);

  if (spec.udf1.present) current = current.Udf(ToUdfParams(spec.udf1));
  if (spec.third.has_value()) {
    plan::PlanBuilder::Fragment third = BuildSource(builder, *spec.third);
    current = current.Join(third, spec.join2_key);
  }
  if (spec.udf2.present) current = current.Udf(ToUdfParams(spec.udf2));

  current = current.Aggregate(spec.group_by, spec.aggregates);
  return current.Build(spec.name);
}

}  // namespace miso::workload
