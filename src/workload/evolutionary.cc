#include "workload/evolutionary.h"

#include <cstdio>

namespace miso::workload {

namespace {

using plan::CompareOp;

std::string AnalystName(int analyst, int version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "A%dv%d", analyst + 1, version + 1);
  return buf;
}

/// Per-analyst fixed traits, drawn once from the analyst's RNG stream.
struct AnalystProfile {
  int id = 0;
  AnalystSources sources = AnalystSources::kTwitterFoursquareLandmarks;
  /// Whether the analyst's scoring UDF translates to SQL (runs in DW).
  bool scoring_dw_compatible = true;

  // Predicate parameters of the v1 query.
  double topic_sel = 0.08;
  double ts_sel = 0.5;
  int64_t ts_cutoff = 15000;     // epoch day; larger = more recent
  double category_sel = 0.15;
  double region_sel = 0.05;
  double kind_sel = 0.3;
};

AnalystProfile MakeProfile(int analyst, Rng* rng) {
  AnalystProfile p;
  p.id = analyst;
  if (analyst < 4) {
    p.sources = AnalystSources::kTwitterFoursquareLandmarks;
  } else if (analyst < 6) {
    p.sources = AnalystSources::kTwitterFoursquare;
  } else {
    p.sources = AnalystSources::kFoursquareLandmarks;
  }
  // One analyst's scoring UDF cannot run in the DW, pinning that chain to
  // HV and producing the HV-heavy tail of Figure 6.
  p.scoring_dw_compatible = analyst != 5;
  p.topic_sel = rng->UniformReal(0.10, 0.15);
  p.ts_sel = rng->UniformReal(0.45, 0.55);
  p.ts_cutoff = 15000 + 10 * analyst + rng->Uniform(0, 300);
  p.category_sel = rng->UniformReal(0.12, 0.20);
  p.region_sel = rng->UniformReal(0.03, 0.07);
  p.kind_sel = rng->UniformReal(0.2, 0.4);
  return p;
}

FilterSpec MakeFilter(std::string field, CompareOp op, std::string operand,
                      double sel) {
  FilterSpec f;
  f.field = std::move(field);
  f.op = op;
  f.operand = std::move(operand);
  f.selectivity = sel;
  return f;
}

SourceSpec TwitterSource(const AnalystProfile& p, int version,
                         bool widened) {
  SourceSpec s;
  s.dataset = "twitter";
  s.fields = {"user_id", "ts", "topic", "text"};
  if (widened) s.fields.push_back("lang");  // kWidenSchema mutation
  s.filters.push_back(MakeFilter(
      "topic", CompareOp::kLike, "cat_a" + std::to_string(p.id) + "%",
      p.topic_sel));
  s.filters.push_back(MakeFilter("ts", CompareOp::kGt,
                                 std::to_string(p.ts_cutoff), p.ts_sel));
  (void)version;
  return s;
}

SourceSpec FoursquareSource(const AnalystProfile& p) {
  SourceSpec s;
  s.dataset = "foursquare";
  s.fields = {"user_id", "ts", "checkin_loc", "category"};
  s.filters.push_back(MakeFilter(
      "category", CompareOp::kEq, "cuisine_a" + std::to_string(p.id),
      p.category_sel));
  return s;
}

SourceSpec LandmarksSource(const AnalystProfile& p, int variant) {
  SourceSpec s;
  s.dataset = "landmarks";
  s.fields = {"checkin_loc", "city", "region", "kind", "rating"};
  s.filters.push_back(MakeFilter(
      "region", CompareOp::kEq,
      "region_a" + std::to_string(p.id) + "_" + std::to_string(variant),
      p.region_sel));
  s.filters.push_back(MakeFilter(
      "kind", CompareOp::kEq,
      "kind_a" + std::to_string(p.id) + "_" + std::to_string(variant),
      p.kind_sel));
  return s;
}

UdfSpec SentimentUdf(const AnalystProfile& p) {
  UdfSpec u;
  u.present = true;
  u.name = "sentiment_a" + std::to_string(p.id);
  u.size_factor = 0.2;      // keeps scored columns, drops raw text
  u.row_selectivity = 0.9;  // drops unscorable rows
  u.cpu_factor = 8.0;       // NLP-ish per-row work
  // Most analysts use arbitrary Python (HV-only); analysts 2/3/4 use a
  // dictionary-based sentiment expressible as SQL, so their whole chain is
  // DW-eligible once views are placed.
  u.dw_compatible = p.id >= 2 && p.id <= 4;
  return u;
}

UdfSpec ScoringUdf(const AnalystProfile& p) {
  UdfSpec u;
  u.present = true;
  u.name = "score_a" + std::to_string(p.id);
  u.size_factor = 0.8;
  u.row_selectivity = 1.0;
  u.cpu_factor = 1.2;
  u.dw_compatible = p.scoring_dw_compatible;
  return u;
}

/// Aggregation variants an analyst rotates through while refining.
void SetAggregation(QuerySpec* spec, const AnalystProfile& p, int variant) {
  const bool has_landmarks =
      p.sources != AnalystSources::kTwitterFoursquare;
  if (has_landmarks) {
    switch (variant % 3) {
      case 0:
        spec->group_by = {"region"};
        spec->aggregates = {{"count", "*"}};
        break;
      case 1:
        spec->group_by = {"region", "kind"};
        spec->aggregates = {{"count", "*"}, {"avg", "rating"}};
        break;
      default:
        spec->group_by = {"city"};
        spec->aggregates = {{"count", "*"}, {"sum", "rating"}};
        break;
    }
  } else {
    switch (variant % 3) {
      case 0:
        spec->group_by = {"category"};
        spec->aggregates = {{"count", "*"}};
        break;
      case 1:
        spec->group_by = {"category"};
        spec->aggregates = {{"count", "*"}, {"avg", "ts"}};
        break;
      default:
        spec->group_by = {"category"};
        spec->aggregates = {{"sum", "checkin_loc"}};
        break;
    }
  }
}

/// The v1 (base) spec of an analyst.
QuerySpec BaseSpec(const AnalystProfile& p) {
  QuerySpec spec;
  spec.analyst = p.id;
  spec.version = 0;
  spec.name = AnalystName(p.id, 0);

  switch (p.sources) {
    case AnalystSources::kTwitterFoursquareLandmarks:
      spec.left = TwitterSource(p, 0, /*widened=*/false);
      spec.right = FoursquareSource(p);
      spec.third = LandmarksSource(p, 0);
      spec.join1_key = "user_id";
      spec.join2_key = "checkin_loc";
      spec.udf1 = SentimentUdf(p);
      spec.udf2 = ScoringUdf(p);
      break;
    case AnalystSources::kTwitterFoursquare:
      spec.left = TwitterSource(p, 0, /*widened=*/false);
      spec.right = FoursquareSource(p);
      spec.join1_key = "user_id";
      spec.udf1 = SentimentUdf(p);
      spec.udf2 = ScoringUdf(p);
      break;
    case AnalystSources::kFoursquareLandmarks:
      spec.left = FoursquareSource(p);
      spec.right = LandmarksSource(p, 0);
      spec.join1_key = "checkin_loc";
      spec.udf1 = ScoringUdf(p);  // no text, no sentiment stage
      break;
  }
  SetAggregation(&spec, p, 0);
  return spec;
}

/// The mutation kind version `v` (1-based beyond v1) applies.
MutationKind KindForVersion(const AnalystProfile& p, int version) {
  switch (version) {
    case 1:
      // 2-source analysts have no reference data to swap: they change the
      // aggregation (everything below the aggregate is reusable).
      return p.sources == AnalystSources::kTwitterFoursquare
                 ? MutationKind::kChangeAggregate
                 : MutationKind::kRefineReference;
    case 2:
      return MutationKind::kTightenPredicate;
    default:
      // Even analysts settle on a final aggregation; analyst 1 realizes a
      // field is missing and re-extracts; the remaining odd analysts
      // tighten their predicates once more.
      if (p.id % 2 == 0) return MutationKind::kChangeAggregate;
      return p.id == 1 ? MutationKind::kWidenSchema
                       : MutationKind::kTightenPredicate;
  }
}

/// Applies a mutation to `spec` (the previous version), in place.
void Mutate(QuerySpec* spec, const AnalystProfile& p, int version,
            MutationKind kind) {
  spec->version = version;
  spec->name = AnalystName(p.id, version);
  switch (kind) {
    case MutationKind::kBase:
      break;
    case MutationKind::kRefineReference:
      if (spec->third.has_value()) {
        spec->third = LandmarksSource(p, version);
      } else if (spec->right.dataset == "landmarks") {
        spec->right = LandmarksSource(p, version);
      }
      SetAggregation(spec, p, version);
      break;
    case MutationKind::kTightenPredicate: {
      // Extra conjuncts on the twitter (or foursquare) filter; the old
      // filtered view subsumes the new one.
      // Each successive tightening adds conjuncts, so every new filter
      // implies the previous versions' filters (the old filtered views
      // subsume the new query).
      SourceSpec* src = &spec->left;
      const int round = version;  // distinct operands per version
      if (src->dataset == "twitter") {
        src->filters.push_back(MakeFilter(
            "ts", CompareOp::kGt,
            std::to_string(p.ts_cutoff + 60 * round), p.ts_sel * 0.7));
        src->filters.push_back(MakeFilter(
            "text", CompareOp::kLike,
            "%launch_a" + std::to_string(p.id) + "_" +
                std::to_string(round) + "%",
            0.45));
      } else {
        src->filters.push_back(MakeFilter(
            "ts", CompareOp::kGt,
            std::to_string(p.ts_cutoff + 60 * round), 0.6));
      }
      SetAggregation(spec, p, version);
      break;
    }
    case MutationKind::kChangeAggregate:
      SetAggregation(spec, p, version);
      break;
    case MutationKind::kWidenSchema: {
      SourceSpec* src = &spec->left;
      bool have = false;
      const std::string extra =
          src->dataset == "twitter" ? "geo_lon" : "shout";
      for (const std::string& f : src->fields) {
        if (f == extra) have = true;
      }
      if (!have) src->fields.push_back(extra);
      SetAggregation(spec, p, version);
      break;
    }
  }
}

}  // namespace

std::string_view MutationKindToString(MutationKind kind) {
  switch (kind) {
    case MutationKind::kBase:
      return "base";
    case MutationKind::kRefineReference:
      return "refine-reference";
    case MutationKind::kTightenPredicate:
      return "tighten-predicate";
    case MutationKind::kChangeAggregate:
      return "change-aggregate";
    case MutationKind::kWidenSchema:
      return "widen-schema";
  }
  return "?";
}

Result<EvolutionaryWorkload> EvolutionaryWorkload::Generate(
    const relation::Catalog* catalog, const WorkloadConfig& config) {
  if (config.num_analysts < 1 || config.versions_per_analyst < 1) {
    return Status::InvalidArgument(
        "workload needs >= 1 analyst and >= 1 version");
  }

  Rng master(config.seed);
  EvolutionaryWorkload workload;

  // Per-analyst query sequences.
  std::vector<std::vector<WorkloadQuery>> per_analyst(
      static_cast<size_t>(config.num_analysts));
  for (int a = 0; a < config.num_analysts; ++a) {
    Rng rng = master.Fork();
    const AnalystProfile profile = MakeProfile(a, &rng);
    QuerySpec spec = BaseSpec(profile);
    for (int v = 0; v < config.versions_per_analyst; ++v) {
      MutationKind kind = MutationKind::kBase;
      if (v > 0) {
        kind = KindForVersion(profile, v);
        Mutate(&spec, profile, v, kind);
      }
      WorkloadQuery query;
      query.spec = spec;
      query.analyst = a;
      query.version = v;
      query.mutation = kind;
      MISO_ASSIGN_OR_RETURN(query.plan, BuildQueryFromSpec(catalog, spec));
      per_analyst[static_cast<size_t>(a)].push_back(std::move(query));
    }
  }

  // Arrival order.
  if (config.interleave) {
    for (int v = 0; v < config.versions_per_analyst; ++v) {
      for (int a = 0; a < config.num_analysts; ++a) {
        workload.queries_.push_back(
            per_analyst[static_cast<size_t>(a)][static_cast<size_t>(v)]);
      }
    }
  } else {
    for (int a = 0; a < config.num_analysts; ++a) {
      for (WorkloadQuery& q : per_analyst[static_cast<size_t>(a)]) {
        workload.queries_.push_back(std::move(q));
      }
    }
  }
  return workload;
}

std::vector<plan::Plan> EvolutionaryWorkload::Plans() const {
  std::vector<plan::Plan> plans;
  plans.reserve(queries_.size());
  for (const WorkloadQuery& q : queries_) plans.push_back(q.plan);
  return plans;
}

}  // namespace miso::workload
