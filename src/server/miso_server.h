#ifndef MISO_SERVER_MISO_SERVER_H_
#define MISO_SERVER_MISO_SERVER_H_

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/bounded_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "dw/dw_store.h"
#include "fault/fault.h"
#include "hv/hv_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/multistore_optimizer.h"
#include "optimizer/whatif_cache.h"
#include "plan/node_factory.h"
#include "server/background_reorganizer.h"
#include "server/epoch.h"
#include "server/session.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "transfer/transfer_model.h"
#include "tuner/miso_tuner.h"
#include "views/view_catalog.h"
#include "workload/evolutionary.h"

namespace miso::server {

/// Configuration of the online multistore server (DESIGN.md §14).
struct ServerConfig {
  /// Engine configuration, reused verbatim from the simulator: budgets,
  /// reorganization cadence, cost models, fault spec, observability
  /// knobs, worker threads. `sim.variant` must be `kMsMiso` — the server
  /// serves the full multistore with the MISO tuner; the baseline
  /// variants remain simulator-only.
  sim::SimConfig sim;

  /// Sessions per optimize batch. Sessions admitted into the same wave
  /// are planned concurrently against one frozen design snapshot (they
  /// do not see each other's harvested views — batch semantics); waves
  /// never span an epoch boundary. `wave_size = 1` plans every session
  /// against the freshest catalogs and, with `online_reorg = false`,
  /// reproduces `MultistoreSimulator::Run` record-for-record.
  int wave_size = 4;

  /// True (default): reorganizations run on the background thread —
  /// the design flips at the epoch boundary, journal steps apply on
  /// private copies with per-step verification, and only sessions that
  /// read a still-moving view wait for the movement to complete.
  /// False: stop-the-world at every boundary, the simulator's cadence.
  bool online_reorg = true;

  /// Bound of the admission queue; `Submit` blocks when full
  /// (backpressure instead of unbounded memory growth).
  std::size_t admission_capacity = 256;

  /// Hint for fault-plan resolution: profile-derived DW outage windows
  /// are placed relative to this many expected sessions (explicitly
  /// configured windows in `sim.fault.dw_outages` need no hint).
  int expected_sessions = 0;

  /// Invoked by the scheduler thread after every online reorganization
  /// resolves (published or rolled back) with the live design state.
  std::function<void(const EpochSnapshot&)> epoch_observer;
};

/// The online multistore server: a facade over the same engine stack the
/// simulator drives (stores, optimizer, tuner, ledger, fault injector),
/// accepting concurrent query sessions through a bounded admission queue
/// and reorganizing the design in the background.
///
/// Determinism contract: all model-class outputs — per-session plans,
/// costs, simulated times, harvested view ids, metrics, the JSONL trace
/// — are a pure function of the admission order. Sessions are batched
/// into fixed-span waves cut deterministically by admission index,
/// planned and executed in parallel into caller-owned slots, then
/// reduced serially in admission order (captured trace lines and
/// floating-point histogram observations are replayed at that serial
/// point). `MISO_THREADS` and producer/consumer interleavings trade
/// wall-clock only.
///
/// Epoch discipline: the live catalogs mutate only on the scheduler
/// thread between waves. At an epoch boundary the background thread
/// tunes over a snapshot, the scheduler flips the live design by
/// replaying the pristine journal (metadata), and the journal's
/// step-at-a-time walk — verified journal-consistent after every step —
/// proceeds on private copies while the next waves execute. A session
/// whose plan reads a view still in motion waits (simulated time) for
/// the movement to complete; everyone else overlaps with it. In-flight
/// sessions therefore always see a journal-consistent design, and the
/// server's total cost is never worse than the stop-the-world cadence
/// on the same admission sequence.
class MisoServer {
 public:
  MisoServer(const relation::Catalog* catalog, const ServerConfig& config);
  ~MisoServer();

  MisoServer(const MisoServer&) = delete;
  MisoServer& operator=(const MisoServer&) = delete;

  /// Admits one query session, blocking while the admission queue is
  /// full. The future resolves when the serial reducer completes the
  /// session; after `Close` it resolves immediately with an error.
  std::future<SessionResult> Submit(workload::WorkloadQuery query);

  /// Stops admission; already-admitted sessions still complete.
  void Close();

  /// Closes admission, drains every admitted session, joins the
  /// scheduler and background threads, and returns the run report
  /// (records in admission order). Fails if the engine hit a fatal
  /// error (e.g. a tuner failure); per-session failures — a fault-retry
  /// budget running dry — fail only that session's future.
  Result<sim::RunReport> Finish();

 private:
  struct SessionSlot;
  /// An in-flight background reorganization, between the boundary flip
  /// and the movement join at the next wave's reduce.
  struct InFlightReorg {
    int reorg_index = 0;
    int boundary_session = 0;
    /// Simulated movement start: max(boundary time, previous movement
    /// completion) — reorganizations never overlap each other.
    Seconds start_now = 0;
    int crash_before = -1;
    bool rolled_back = false;
    Bytes planned_to_dw = 0;
    Bytes planned_to_hv = 0;
    std::set<views::ViewId> moved;
    std::future<Result<ReorgOutcome>> done;
  };
  /// A published epoch whose simulated movement may still be in flight:
  /// sessions reading a moved view wait until `complete_at`.
  struct MovementGate {
    int reorg_index = 0;
    int epoch = 0;
    bool rolled_back = false;
    Seconds duration = 0;
    Seconds complete_at = 0;
    Seconds charged = 0;
    std::set<views::ViewId> moved;
    // server.epoch trace payload, captured at publication.
    int steps_applied = 0;
    Bytes to_dw = 0;
    Bytes to_hv = 0;
    Bytes hv_used = 0;
    Bytes dw_used = 0;
  };

  void SchedulerLoop();
  std::vector<Session> FormWave();
  Status StartBoundaryReorg(int boundary_session);
  Status StartOnlineReorg(int boundary_session);
  Status StopTheWorldReorg(int boundary_session);
  Status RunWave(std::vector<Session>* wave);
  void PlanAndExecute(const Session& session, SessionSlot* slot) const;
  Status JoinInFlightReorg();
  Status ReduceSession(Session* session, SessionSlot* slot);
  void ExpireGates(bool force);
  void ChargeMoves(Bytes dw_bytes, Bytes hv_bytes, Seconds start,
                   Seconds* duration);
  std::vector<plan::Plan> TuneWindow() const;
  verify::DesignBudgets Budgets() const;
  void EmitEpochTrace(const MovementGate& gate, Seconds overlap_saved_s);
  void ObserveEpoch(const MovementGate& gate, int boundary_session,
                    Seconds duration);
  void FailSession(Session* session, const Status& status);
  void Fatal(const Status& status, std::vector<Session>* wave,
             size_t from_index);

  const relation::Catalog* catalog_;
  ServerConfig config_;

  // Observability gates, engaged for the server's lifetime (same
  // discipline — and the same caveat about concurrent engines with
  // differing obs configs — as MultistoreSimulator::Run).
  std::optional<obs::ScopedMetrics> scoped_metrics_;
  std::optional<obs::ScopedTrace> scoped_trace_;

  // Engine stack, shared read-only by wave workers during a wave;
  // catalogs/ledger mutate only on the scheduler thread between waves.
  plan::NodeFactory factory_;
  hv::HvStore hv_store_;
  dw::DwStore dw_store_;
  transfer::TransferModel mover_;
  optimizer::MultistoreOptimizer opt_;
  dw::ResourceLedger ledger_;
  fault::FaultPlan fault_plan_;
  std::optional<fault::FaultInjector> injector_storage_;
  const fault::FaultInjector* injector_ = nullptr;
  tuner::MisoTunerConfig tuner_config_;
  tuner::MisoTuner tuner_;
  optimizer::WhatIfCache whatif_cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BackgroundReorganizer> reorganizer_;

  // Admission: the id assignment and the push happen under one lock, so
  // queue order always equals session-id order.
  BoundedQueue<Session> queue_;
  Mutex admission_mutex_;
  int next_session_id_ MISO_GUARDED_BY(admission_mutex_) = 0;

  // Scheduler-thread state (owned by scheduler_ after construction; read
  // by Finish only after the join).
  sim::RunReport report_;
  int next_index_ = 0;  // next admission index to pop (wave-span cuts)
  Seconds now_ = 0;
  Seconds last_reorg_time_ = 0;
  Seconds last_movement_complete_ = 0;
  uint64_t next_view_id_ = 1;
  int epoch_ = 0;
  std::vector<plan::Plan> history_;
  std::optional<int> pending_boundary_;
  std::optional<InFlightReorg> in_flight_;
  std::vector<MovementGate> gates_;
  Seconds overlap_saved_total_ = 0;
  Status fatal_;

  bool started_ = false;
  bool finished_ = false;
  std::thread scheduler_;
};

}  // namespace miso::server

#endif  // MISO_SERVER_MISO_SERVER_H_
