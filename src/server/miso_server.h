#ifndef MISO_SERVER_MISO_SERVER_H_
#define MISO_SERVER_MISO_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/bounded_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "dw/dw_store.h"
#include "fault/fault.h"
#include "hv/hv_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/multistore_optimizer.h"
#include "optimizer/whatif_cache.h"
#include "plan/node_factory.h"
#include "server/background_reorganizer.h"
#include "server/epoch.h"
#include "server/overload.h"
#include "server/plan_cache.h"
#include "server/session.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "transfer/transfer_model.h"
#include "tuner/miso_tuner.h"
#include "views/view_catalog.h"
#include "workload/evolutionary.h"

namespace miso::server {

/// Configuration of the online multistore server (DESIGN.md §14).
struct ServerConfig {
  /// Engine configuration, reused verbatim from the simulator: budgets,
  /// reorganization cadence, cost models, fault spec, observability
  /// knobs, worker threads. `sim.variant` must be `kMsMiso` — the server
  /// serves the full multistore with the MISO tuner; the baseline
  /// variants remain simulator-only.
  sim::SimConfig sim;

  /// Sessions per optimize batch. Sessions admitted into the same wave
  /// are planned concurrently against one frozen design snapshot (they
  /// do not see each other's harvested views — batch semantics); waves
  /// never span an epoch boundary. `wave_size = 1` plans every session
  /// against the freshest catalogs and, with `online_reorg = false`,
  /// reproduces `MultistoreSimulator::Run` record-for-record.
  int wave_size = 4;

  /// True (default): reorganizations run on the background thread —
  /// the design flips at the epoch boundary, journal steps apply on
  /// private copies with per-step verification, and only sessions that
  /// read a still-moving view wait for the movement to complete.
  /// False: stop-the-world at every boundary, the simulator's cadence.
  bool online_reorg = true;

  /// Bound of the admission queue; `Submit` blocks when full
  /// (backpressure instead of unbounded memory growth).
  std::size_t admission_capacity = 256;

  /// True (default): consult the design-epoch plan cache before running
  /// the optimizer. A hit returns the cached `MultistorePlan` (five-part
  /// anatomy included) and replays the optimizer telemetry captured when
  /// it was first computed, so every model-class output is byte-identical
  /// with the cache off. Invalidated wholesale at every published design
  /// flip and every DW-outage degradation edge; DW-outage (HV-only)
  /// plans never consult or populate it.
  bool plan_cache = true;

  /// Byte budget of the plan cache (LRU beyond it).
  Bytes plan_cache_bytes = PlanCache::kDefaultMaxBytes;

  /// True (default): while wave N's serial reduce runs on the scheduler
  /// thread, wave N+1's sessions (when already admitted) plan and
  /// execute speculatively on the worker pool against a frozen snapshot
  /// of the live catalogs. The speculation is validated by catalog
  /// content fingerprint before its results are used and replanned from
  /// scratch when the design moved (harvest, flip), so all model-class
  /// outputs are byte-identical with pipelining off. No-op without a
  /// worker pool (`MISO_THREADS=1`).
  bool pipeline_waves = true;

  /// Hint for fault-plan resolution: profile-derived DW outage windows
  /// are placed relative to this many expected sessions (explicitly
  /// configured windows in `sim.fault.dw_outages` need no hint).
  int expected_sessions = 0;

  /// Invoked by the scheduler thread after every online reorganization
  /// resolves (published or rolled back) with the live design state.
  std::function<void(const EpochSnapshot&)> epoch_observer;

  /// Invoked by the scheduler thread at every session's serial reduce
  /// point, after the record is complete and before the session's future
  /// resolves. A non-OK return is a *server-level* fatal: the failing
  /// session and everything after it (including an in-flight speculative
  /// wave) fail with that status and `Finish` returns it. Test/ops hook
  /// — e.g. turning an SLO breach into a hard stop.
  std::function<Status(const sim::QueryRecord&)> reduce_observer;

  /// Overload protection (DESIGN.md §16): admission deadlines with
  /// priority-class load shedding, the DW-health circuit breaker, and
  /// the stuck-wave watchdog. All default off; a default-constructed
  /// OverloadConfig leaves the serving path byte-identical to the
  /// pre-overload pipeline.
  OverloadConfig overload;
};

/// The online multistore server: a facade over the same engine stack the
/// simulator drives (stores, optimizer, tuner, ledger, fault injector),
/// accepting concurrent query sessions through a bounded admission queue
/// and reorganizing the design in the background.
///
/// Determinism contract: all model-class outputs — per-session plans,
/// costs, simulated times, harvested view ids, metrics, the JSONL trace
/// — are a pure function of the admission order. Sessions are batched
/// into fixed-span waves cut deterministically by admission index,
/// planned and executed in parallel into caller-owned slots, then
/// reduced serially in admission order (captured trace lines and
/// floating-point histogram observations are replayed at that serial
/// point). `MISO_THREADS` and producer/consumer interleavings trade
/// wall-clock only.
///
/// Epoch discipline: the live catalogs mutate only on the scheduler
/// thread between waves. At an epoch boundary the background thread
/// tunes over a snapshot, the scheduler flips the live design by
/// replaying the pristine journal (metadata), and the journal's
/// step-at-a-time walk — verified journal-consistent after every step —
/// proceeds on private copies while the next waves execute. A session
/// whose plan reads a view still in motion waits (simulated time) for
/// the movement to complete; everyone else overlaps with it. In-flight
/// sessions therefore always see a journal-consistent design, and the
/// server's total cost is never worse than the stop-the-world cadence
/// on the same admission sequence.
class MisoServer {
 public:
  MisoServer(const relation::Catalog* catalog, const ServerConfig& config);
  ~MisoServer();

  MisoServer(const MisoServer&) = delete;
  MisoServer& operator=(const MisoServer&) = delete;

  /// Admits one query session, blocking while the admission queue is
  /// full. The future resolves when the serial reducer completes the
  /// session; after `Close` it resolves immediately with an error.
  std::future<SessionResult> Submit(workload::WorkloadQuery query);

  /// Stops admission; already-admitted sessions still complete.
  void Close();

  /// Closes admission, drains every admitted session, joins the
  /// scheduler and background threads, and returns the run report
  /// (records in admission order). Fails if the engine hit a fatal
  /// error (e.g. a tuner failure); per-session failures — a fault-retry
  /// budget running dry — fail only that session's future.
  Result<sim::RunReport> Finish();

 private:
  struct SessionSlot;
  /// One of the two pooled wave buffers (double-buffered for pipelining).
  /// Sessions, slots, and futures are reused across waves — `ResetWave`
  /// clears them without releasing capacity (the hot-path allocation
  /// diet) — so their vectors never reallocate while speculative workers
  /// hold pointers into them.
  struct WaveState {
    std::vector<Session> sessions;
    std::vector<SessionSlot> slots;
    /// True between speculative dispatch and the join in `EnsurePlanned`
    /// (or `Fatal`). While set, workers may be writing `slots` and
    /// reading the catalog snapshots below; the scheduler touches
    /// neither until the futures are joined.
    bool speculative = false;
    /// Frozen design the speculation planned against, and its content
    /// fingerprints — compared against the live catalogs at the join to
    /// decide accept vs replan.
    views::ViewCatalog hv_snapshot;
    views::ViewCatalog dw_snapshot;
    uint64_t planned_hv_fp = 0;
    uint64_t planned_dw_fp = 0;
    /// Breaker transition epoch at speculation time: a breaker edge
    /// between dispatch and join changes DW availability, so the wave is
    /// replanned exactly like a fingerprint mismatch.
    uint64_t planned_breaker_epoch = 0;
    std::vector<std::future<void>> futures;
    // miso-lint: allow(L003) runtime-class overlap histogram timestamp only
    std::chrono::steady_clock::time_point dispatched_at;
  };
  /// An in-flight background reorganization, between the boundary flip
  /// and the movement join at the next wave's reduce.
  struct InFlightReorg {
    int reorg_index = 0;
    int boundary_session = 0;
    /// Simulated movement start: max(boundary time, previous movement
    /// completion) — reorganizations never overlap each other.
    Seconds start_now = 0;
    int crash_before = -1;
    bool rolled_back = false;
    Bytes planned_to_dw = 0;
    Bytes planned_to_hv = 0;
    std::set<views::ViewId> moved;
    std::future<Result<ReorgOutcome>> done;
  };
  /// A published epoch whose simulated movement may still be in flight:
  /// sessions reading a moved view wait until `complete_at`.
  struct MovementGate {
    int reorg_index = 0;
    int epoch = 0;
    bool rolled_back = false;
    Seconds duration = 0;
    Seconds complete_at = 0;
    Seconds charged = 0;
    std::set<views::ViewId> moved;
    // server.epoch trace payload, captured at publication.
    int steps_applied = 0;
    Bytes to_dw = 0;
    Bytes to_hv = 0;
    Bytes hv_used = 0;
    Bytes dw_used = 0;
  };

  void SchedulerLoop();
  /// Span of the next wave: `wave_size`, cut so it never crosses a
  /// query-count epoch boundary.
  int WaveSpan() const;
  /// Blocking wave formation: pops until the span is full or the queue
  /// is closed and drained.
  void FormWave(WaveState* wave);
  /// Non-blocking wave formation for speculation: takes the full span or
  /// (once closed) the final partial batch, else nothing — wave
  /// composition stays a pure function of the admission order.
  bool TryFormWave(WaveState* wave);
  Status StartBoundaryReorg(int boundary_session);
  Status StartOnlineReorg(int boundary_session);
  Status StopTheWorldReorg(int boundary_session);
  /// Makes every slot of `wave` planned and executed against the live
  /// design: joins a speculative dispatch (accepting it iff the live
  /// catalogs still fingerprint-match its snapshot), runs the serial
  /// plan-cache lookup/invalidation pass, fans planning/execution out
  /// over the pool for whatever remains, then runs the serial cache
  /// insert pass. All cache decisions happen on the scheduler thread in
  /// admission order — hit/miss/eviction counts are model-class.
  void EnsurePlanned(WaveState* wave);
  /// Speculatively forms wave N+1 and dispatches its planning/execution
  /// on the worker pool against a frozen catalog snapshot, overlapping
  /// with wave N's serial reduce. Skipped when pipelining is off, there
  /// is no pool, or a query-count boundary is known to flip the design
  /// first.
  void Speculate(const WaveState* cur, WaveState* next);
  Status ReduceWave(WaveState* wave);
  void ResetWave(WaveState* wave);
  void PlanAndExecute(const Session& session, SessionSlot* slot,
                      const views::ViewCatalog& hv_views,
                      const views::ViewCatalog& dw_views) const;
  Status JoinInFlightReorg();
  Status ReduceSession(Session* session, SessionSlot* slot);
  void ExpireGates(bool force);
  void ChargeMoves(Bytes dw_bytes, Bytes hv_bytes, Seconds start,
                   Seconds* duration);
  std::vector<plan::Plan> TuneWindow() const;
  verify::DesignBudgets Budgets() const;
  void EmitEpochTrace(const MovementGate& gate, Seconds overlap_saved_s);
  void ObserveEpoch(const MovementGate& gate, int boundary_session,
                    Seconds duration);
  void FailSession(Session* session, const Status& status,
                   SessionOutcome outcome = SessionOutcome::kAborted);
  /// Simulated arrival time of a session under the overload config.
  Seconds ArrivalTime(int session_id) const;
  /// Deadline of the session's priority class (<= 0: never shed).
  Seconds DeadlineFor(const Session& session) const;
  /// Sheds one session at its serial reduce point: resolves its future
  /// with a terminal kShed status, drops its captured telemetry
  /// wholesale, and counts it. The decision is a pure function of the
  /// admission order and the simulated clock.
  void ShedSession(Session* session, SessionSlot* slot, Seconds wait,
                   Seconds deadline);
  /// True while the DW-health breaker denies warehouse access.
  bool BreakerOpen() const;
  /// Plan-cache invalidation + telemetry at every breaker edge.
  void OnBreakerEdge(const DwCircuitBreaker::Edge& edge);
  /// Engine-level failure: closes admission, joins any speculative
  /// dispatch (draining in-flight workers before their wave buffers can
  /// be touched), fails every unresolved session in both wave buffers
  /// and the queue with `status`.
  void Fatal(const Status& status);

  const relation::Catalog* catalog_;
  ServerConfig config_;

  // Observability gates, engaged for the server's lifetime (same
  // discipline — and the same caveat about concurrent engines with
  // differing obs configs — as MultistoreSimulator::Run).
  std::optional<obs::ScopedMetrics> scoped_metrics_;
  std::optional<obs::ScopedTrace> scoped_trace_;

  // Engine stack, shared read-only by wave workers during a wave;
  // catalogs/ledger mutate only on the scheduler thread between waves.
  plan::NodeFactory factory_;
  hv::HvStore hv_store_;
  dw::DwStore dw_store_;
  transfer::TransferModel mover_;
  optimizer::MultistoreOptimizer opt_;
  dw::ResourceLedger ledger_;
  fault::FaultPlan fault_plan_;
  std::optional<fault::FaultInjector> injector_storage_;
  const fault::FaultInjector* injector_ = nullptr;
  tuner::MisoTunerConfig tuner_config_;
  tuner::MisoTuner tuner_;
  optimizer::WhatIfCache whatif_cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BackgroundReorganizer> reorganizer_;

  // Admission: the id assignment and the push happen under one lock, so
  // queue order always equals session-id order.
  BoundedQueue<Session> queue_;
  Mutex admission_mutex_;
  int next_session_id_ MISO_GUARDED_BY(admission_mutex_) = 0;

  // Scheduler-thread state (owned by scheduler_ after construction; read
  // by Finish only after the join).
  sim::RunReport report_;
  // Double-buffered wave storage. Workers write into a wave's slots only
  // between its dispatch and its join; every scheduler-loop exit path
  // (normal drain, fatal) joins outstanding futures first, so no worker
  // can outlive the loop holding pointers into these buffers.
  WaveState waves_[2];
  // Serving-path plan cache (scheduler thread only — see PlanCache).
  PlanCache plan_cache_;
  uint64_t cost_epoch_ = 0;
  // DW-availability of the most recently cache-considered session, for
  // degradation-edge invalidation.
  bool have_last_dw_down_ = false;
  bool last_dw_down_ = false;
  // Runtime-class pipelining tallies (how often speculation ran / was
  // thrown away — timing-dependent, excluded from determinism).
  int waves_speculative_ = 0;
  int waves_replanned_ = 0;
  int next_index_ = 0;  // next admission index to pop (wave-span cuts)
  Seconds now_ = 0;
  Seconds last_reorg_time_ = 0;
  Seconds last_movement_complete_ = 0;
  uint64_t next_view_id_ = 1;
  int epoch_ = 0;
  std::vector<plan::Plan> history_;
  std::optional<int> pending_boundary_;
  std::optional<InFlightReorg> in_flight_;
  std::vector<MovementGate> gates_;
  Seconds overlap_saved_total_ = 0;
  // Overload protection (scheduler thread only): breaker engaged iff
  // config_.overload.breaker; shed/failed tallies are model-class.
  std::optional<DwCircuitBreaker> breaker_;
  int sessions_shed_ = 0;
  int sessions_failed_ = 0;
  int breaker_degraded_sessions_ = 0;
  int consecutive_stuck_waves_ = 0;
  Status fatal_;

  bool started_ = false;
  bool finished_ = false;
  std::thread scheduler_;
};

}  // namespace miso::server

#endif  // MISO_SERVER_MISO_SERVER_H_
