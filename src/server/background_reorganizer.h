#ifndef MISO_SERVER_BACKGROUND_REORGANIZER_H_
#define MISO_SERVER_BACKGROUND_REORGANIZER_H_

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "common/retry.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "tuner/miso_tuner.h"
#include "tuner/reorg_journal.h"
#include "verify/design_verifier.h"
#include "views/view_catalog.h"

namespace miso::server {

/// First stage of one background reorganization, available as soon as
/// the tuner has run: the plan, a pristine (unapplied) journal the
/// scheduler replays onto the live catalogs to flip the design, and the
/// pre-decided crash fate (the fault oracle is a pure hash, so whether
/// this reorganization crashes — and whether its recovery policy makes
/// it roll back — is known before a single step runs).
struct ReorgFlip {
  tuner::ReorgPlan plan;
  /// Unapplied snapshot of the journal. When the reorganization will not
  /// roll back, the scheduler applies this copy to the live catalogs at
  /// the epoch boundary (a metadata flip; the simulated movement time is
  /// what overlaps with query execution).
  tuner::ReorgJournal journal;
  int crash_before = -1;
  bool rolled_back = false;
};

/// Final stage: what the step-at-a-time walk over the private catalog
/// copies actually did, plus the telemetry it captured (replayed by the
/// scheduler at a deterministic point in the trace stream).
struct ReorgOutcome {
  /// Steps/bytes applied before the crash point (the whole journal when
  /// no crash was injected).
  tuner::ReorgJournal::Outcome partial;
  /// Steps/bytes of the recovery pass (zero without a crash). A rollback
  /// re-crosses the link in the opposite direction, exactly like the
  /// stop-the-world path.
  tuner::ReorgJournal::Outcome recovery;
  bool rolled_back = false;
  std::vector<std::string> trace_lines;
  std::vector<obs::ScopedHistogramCapture::Observation> histogram_obs;
};

/// One unit of background work: tune over the boundary snapshot, then
/// walk the journal one atomic step at a time on the private copies,
/// verifying journal consistency (V209) after every step and the design
/// invariants after recovery.
struct ReorgRequest {
  int reorg_index = 0;
  /// Private copies of both catalogs, snapshotted at the epoch boundary.
  /// The walk mutates only these — the live catalogs never expose a
  /// half-applied design to query sessions.
  views::ViewCatalog hv;
  views::ViewCatalog dw;
  std::vector<plan::Plan> window;
  verify::DesignBudgets budgets;
  const fault::FaultInjector* injector = nullptr;
  RecoveryPolicy recovery = RecoveryPolicy::kResume;
  std::promise<Result<ReorgFlip>> flip;
  std::promise<Result<ReorgOutcome>> done;
};

/// The server's background reorganization thread: a FIFO of
/// `ReorgRequest`s processed one at a time (reorganizations never
/// overlap each other, only query execution). The scheduler blocks on
/// `flip` before dispatching the first post-boundary wave and joins
/// `done` when it charges the movement — both futures carry
/// deterministic content, so the thread adds real concurrency without
/// touching the model-class outputs.
class BackgroundReorganizer {
 public:
  explicit BackgroundReorganizer(const tuner::MisoTuner* tuner);
  ~BackgroundReorganizer();

  BackgroundReorganizer(const BackgroundReorganizer&) = delete;
  BackgroundReorganizer& operator=(const BackgroundReorganizer&) = delete;

  /// Hands one reorganization to the thread. The caller keeps the
  /// futures of `request.flip` / `request.done`; both are always
  /// fulfilled (enqueued work survives shutdown — the destructor drains
  /// the queue before joining).
  void Enqueue(ReorgRequest request);

 private:
  void Loop();
  static void RunOne(const tuner::MisoTuner* tuner, ReorgRequest* request);

  const tuner::MisoTuner* tuner_;
  BoundedQueue<ReorgRequest> requests_;
  std::thread thread_;
};

}  // namespace miso::server

#endif  // MISO_SERVER_BACKGROUND_REORGANIZER_H_
