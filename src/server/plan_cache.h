#ifndef MISO_SERVER_PLAN_CACHE_H_
#define MISO_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "optimizer/multistore_plan.h"

namespace miso::server {

/// Cache key of one serving-path planning call: the query identity plus
/// the design identity (per-store catalog content fingerprints) plus the
/// cost-model epoch. Between two wholesale invalidations the live
/// catalogs only *gain* views (opportunistic harvest; removals happen
/// only at reorganization flips, which invalidate), and
/// `ViewCatalog::ContentFingerprint` folds per-view fingerprints with a
/// modular sum — so within one invalidation window equal fingerprints
/// mean the catalog is unchanged, including view ids (a set of additions
/// summing to exactly 0 mod 2^64 is a hash collision, the same risk
/// class every fingerprint consumer accepts). That is what makes the
/// cached plan — ViewScan ids and all — exact, not merely cost-equal.
struct PlanCacheKey {
  uint64_t query_signature = 0;
  uint64_t hv_fingerprint = 0;
  uint64_t dw_fingerprint = 0;
  uint64_t cost_epoch = 0;

  bool operator==(const PlanCacheKey& other) const {
    return query_signature == other.query_signature &&
           hv_fingerprint == other.hv_fingerprint &&
           dw_fingerprint == other.dw_fingerprint &&
           cost_epoch == other.cost_epoch;
  }
};

struct PlanCacheKeyHash {
  std::size_t operator()(const PlanCacheKey& key) const;
};

/// Byte-bounded LRU cache of serving-path optimizer answers, keyed on
/// (query signature, HV/DW catalog content fingerprint, cost-model
/// epoch). An entry stores the full `MultistorePlan` (five-part cost
/// anatomy included) *and* the optimizer telemetry captured while it was
/// first computed — trace lines, histogram observations, counter deltas
/// — so a hit replays byte-identical observability at the session's
/// serial reduce point and every model-class output is independent of
/// the cache being on, off, or thrashing.
///
/// Threading: single-threaded by design — every member is called from
/// the server's scheduler thread only (`Peek` at speculative dispatch,
/// `Lookup`/`Insert`/`Invalidate` in the serial wave passes), so there
/// is no mutex and hit/miss/eviction counts are trivially a pure
/// function of the admission order.
///
/// Invalidation is wholesale (`Invalidate`), called at every published
/// design flip (the only point where views can leave a catalog — a
/// rolled-back or outage-skipped reorganization changes nothing and
/// keeps the window open) and at every DW-outage degradation edge.
/// Entries never go stale in place: between invalidations fingerprint
/// equality implies catalog equality (see `PlanCacheKey`).
class PlanCache {
 public:
  /// Approximate resident overhead of one entry before its payload
  /// (key, LRU/index bookkeeping, vectors' headers). Exposed so tests
  /// can set `max_bytes` to exactly this to force capacity 1 — the
  /// eviction-heavy configuration of the byte-identity sweep.
  static constexpr Bytes kEntryBaseBytes = 512;

  static constexpr Bytes kDefaultMaxBytes = 64 * kMiB;

  /// One cached optimizer answer plus its deferred telemetry.
  struct Entry {
    optimizer::MultistorePlan plan;
    std::vector<std::string> trace_lines;
    std::vector<obs::ScopedHistogramCapture::Observation> histogram_obs;
    std::vector<obs::ScopedCounterCapture::Delta> counter_deltas;
  };

  explicit PlanCache(Bytes max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry without touching counters or the LRU order — the
  /// speculative-dispatch probe. Because the cache only mutates on the
  /// scheduler thread, a Peek's answer always equals the authoritative
  /// `Lookup` the reducer performs later for the same key.
  const Entry* Peek(const PlanCacheKey& key) const;

  /// Returns the entry and refreshes its LRU position, counting a hit;
  /// counts a miss and returns nullptr when absent.
  const Entry* Lookup(const PlanCacheKey& key);

  /// Inserts (or overwrites) `key`, then evicts from the LRU tail while
  /// over the byte bound, returning how many entries were evicted. The
  /// newest entry is never evicted, so a bound smaller than one entry
  /// degrades to capacity 1.
  int64_t Insert(const PlanCacheKey& key, Entry entry);

  /// Drops every entry (design flip / degradation edge), counting one
  /// invalidation.
  void Invalidate();

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t invalidations = 0;
    int64_t entries = 0;
    Bytes bytes = 0;
  };
  Stats GetStats() const;

  Bytes max_bytes() const { return max_bytes_; }

 private:
  struct Node {
    PlanCacheKey key;
    Entry entry;
    Bytes bytes = 0;
  };

  static Bytes EntryBytes(const Entry& entry);

  Bytes max_bytes_;
  Bytes bytes_ = 0;
  // front = most recently used
  std::list<Node> lru_;
  std::unordered_map<PlanCacheKey, std::list<Node>::iterator, PlanCacheKeyHash>
      index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace miso::server

#endif  // MISO_SERVER_PLAN_CACHE_H_
