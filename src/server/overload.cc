#include "server/overload.h"

#include <algorithm>

#include "verify/server_invariants.h"

namespace miso::server {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

DwCircuitBreaker::DwCircuitBreaker(const OverloadConfig& config)
    : failure_threshold_(std::max(1, config.breaker_failure_threshold)),
      cooldown_s_(config.breaker_cooldown_s),
      half_open_successes_(std::max(1, config.breaker_half_open_successes)) {}

std::optional<DwCircuitBreaker::Edge> DwCircuitBreaker::AdvanceTime(
    Seconds now) {
  if (state_ != BreakerState::kOpen) return std::nullopt;
  if (now - opened_at_ < cooldown_s_) return std::nullopt;
  return TransitionTo(BreakerState::kHalfOpen, now);
}

std::optional<DwCircuitBreaker::Edge> DwCircuitBreaker::RecordOutcome(
    bool dw_contact, bool faulted, Seconds now) {
  // Sessions that never touched the warehouse (HV-only plans, degraded
  // sessions while open) carry no evidence either way.
  if (!dw_contact) return std::nullopt;
  switch (state_) {
    case BreakerState::kClosed:
      if (faulted) {
        consecutive_failures_ += 1;
        if (consecutive_failures_ >= failure_threshold_) {
          return TransitionTo(BreakerState::kOpen, now);
        }
      } else {
        consecutive_failures_ = 0;
      }
      return std::nullopt;
    case BreakerState::kOpen:
      // Sessions planned before the edge can still report DW contact;
      // they decide nothing while the breaker rests.
      return std::nullopt;
    case BreakerState::kHalfOpen:
      if (faulted) return TransitionTo(BreakerState::kOpen, now);
      half_open_successes_seen_ += 1;
      if (half_open_successes_seen_ >= half_open_successes_) {
        return TransitionTo(BreakerState::kClosed, now);
      }
      return std::nullopt;
  }
  return std::nullopt;
}

Seconds DwCircuitBreaker::OpenSeconds(Seconds now) const {
  Seconds total = open_total_s_;
  if (state_ == BreakerState::kOpen && now > opened_at_) {
    total += now - opened_at_;
  }
  return total;
}

std::optional<DwCircuitBreaker::Edge> DwCircuitBreaker::TransitionTo(
    BreakerState to, Seconds now) {
  if (status_.ok()) {
    status_ = verify::VerifyBreakerTransition(static_cast<int>(state_),
                                              static_cast<int>(to));
  }
  Edge edge;
  edge.from = state_;
  edge.to = to;
  edge.failures = consecutive_failures_;
  edge.at = now;
  if (state_ == BreakerState::kOpen && now > opened_at_) {
    open_total_s_ += now - opened_at_;
  }
  state_ = to;
  transition_epoch_ += 1;
  if (to == BreakerState::kOpen) {
    opened_at_ = now;
  }
  if (to == BreakerState::kClosed || to == BreakerState::kHalfOpen) {
    consecutive_failures_ = 0;
  }
  if (to == BreakerState::kHalfOpen) {
    half_open_successes_seen_ = 0;
  }
  return edge;
}

}  // namespace miso::server
