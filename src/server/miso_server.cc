#include "server/miso_server.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "common/hash.h"
#include "obs/names.h"
#include "sim/variants.h"
#include "tuner/reorg_journal.h"
#include "verify/error_codes.h"
#include "verify/server_invariants.h"
#include "verify/verify_gate.h"

namespace miso::server {

using optimizer::MultistorePlan;
using plan::NodePtr;
using plan::OpKind;
using views::View;
using views::ViewCatalog;
using views::ViewId;

namespace {

// Scratch view-id space for wave workers: far above anything the serial
// id counter reaches, strided per session so concurrent harvests never
// collide. The serial reducer remaps every harvested id in admission
// order, so scratch ids never escape into the model-class outputs.
constexpr uint64_t kScratchIdBase = 1ULL << 40;
constexpr uint64_t kScratchIdStride = 4096;

/// Views read by an executed plan, per store.
void CollectViewUses(const plan::Plan& executed, std::vector<ViewId>* hv_used,
                     std::vector<ViewId>* dw_used) {
  for (const NodePtr& node : executed.PostOrder()) {
    if (node->kind() != OpKind::kViewScan) continue;
    if (node->view_scan().store == StoreKind::kDw) {
      dw_used->push_back(node->view_scan().view_id);
    } else {
      hv_used->push_back(node->view_scan().view_id);
    }
  }
}

void FoldFault(const fault::FaultAccounting& acc,
               fault::FaultAccounting* total) {
  total->injected += acc.injected;
  total->retries += acc.retries;
  total->wasted_s += acc.wasted_s;
  total->backoff_s += acc.backoff_s;
  total->exhausted = total->exhausted || acc.exhausted;
}

tuner::MisoTunerConfig MakeTunerConfig(const sim::SimConfig& cfg) {
  tuner::MisoTunerConfig tuner_config;
  tuner_config.hv_storage_budget = cfg.hv_storage_budget;
  tuner_config.dw_storage_budget = cfg.dw_storage_budget;
  tuner_config.transfer_budget = cfg.transfer_budget;
  tuner_config.epoch_length = cfg.epoch_length;
  tuner_config.benefit_decay = cfg.benefit_decay;
  tuner_config.store_specific_benefit = cfg.store_specific_benefit;
  tuner_config.handle_interactions = cfg.handle_interactions;
  tuner_config.retain_unselected_views = cfg.retain_unselected_views;
  return tuner_config;
}

/// Same runtime-class `miso.pool.*` publication the simulator does.
void PublishPoolStats(const ThreadPool* pool) {
  if (pool == nullptr || !obs::MetricsOn()) return;
  const ThreadPool::Stats stats = pool->GetStats();
  obs::MetricsRegistry& registry = obs::Metrics();
  registry.GetCounter(obs::names::kPoolTasksRun)->Add(stats.tasks_run);
  registry.GetCounter(obs::names::kPoolSubmits)->Add(stats.submits);
  registry.GetGauge(obs::names::kPoolQueueHighWater)
      ->Max(static_cast<double>(stats.queue_high_water));
}

}  // namespace

/// Per-session output slot, written by exactly one wave worker and read
/// by the serial reducer. Everything with a model-class determinism
/// contract stays here until the reducer folds it in admission order.
/// Slots are pooled in the wave buffers and reused across waves; `Reset`
/// clears content but keeps vector capacity (the allocation diet).
struct MisoServer::SessionSlot {
  Status status;
  bool dw_down = false;
  // DW-health breaker was open when this session was planned: the plan
  // is HV-only (degraded), and the session never consults or populates
  // the plan cache — exactly like an outage window.
  bool breaker_open = false;

  // Planning phase. `plan_ready` marks `ms` + the opt_* telemetry as
  // present (from the plan cache or a completed Optimize), letting
  // PlanAndExecute skip straight to execution. `fill` marks an
  // authoritative cache miss whose computed plan is inserted by the
  // serial insert pass; `key` is its cache key.
  bool plan_ready = false;
  bool fill = false;
  PlanCacheKey key;
  MultistorePlan ms;
  std::vector<std::string> opt_trace_lines;
  std::vector<obs::ScopedHistogramCapture::Observation> opt_histogram_obs;
  std::vector<obs::ScopedCounterCapture::Delta> opt_counter_deltas;

  // Execution phase (per-session, never cached).
  std::vector<View> produced;
  fault::FaultAccounting hv_fault;
  transfer::FaultedTransfer ws;
  std::vector<ViewId> hv_used;
  std::vector<ViewId> dw_used;
  std::vector<std::string> trace_lines;
  std::vector<obs::ScopedHistogramCapture::Observation> histogram_obs;
  std::vector<obs::ScopedCounterCapture::Delta> counter_deltas;

  void Reset() {
    status = Status();
    dw_down = false;
    breaker_open = false;
    plan_ready = false;
    fill = false;
    key = PlanCacheKey();
    ms = MultistorePlan();
    opt_trace_lines.clear();
    opt_histogram_obs.clear();
    opt_counter_deltas.clear();
    produced.clear();
    hv_fault = fault::FaultAccounting();
    ws = transfer::FaultedTransfer();
    hv_used.clear();
    dw_used.clear();
    trace_lines.clear();
    histogram_obs.clear();
    counter_deltas.clear();
  }

  void AdoptEntry(const PlanCache::Entry& entry) {
    ms = entry.plan;
    opt_trace_lines = entry.trace_lines;
    opt_histogram_obs = entry.histogram_obs;
    opt_counter_deltas = entry.counter_deltas;
    plan_ready = true;
  }
};

MisoServer::MisoServer(const relation::Catalog* catalog,
                       const ServerConfig& config)
    : catalog_(catalog),
      config_(config),
      factory_(catalog),
      hv_store_(config.sim.hv, config.sim.hv_storage_budget),
      dw_store_(config.sim.dw, config.sim.dw_storage_budget),
      mover_(config.sim.transfer),
      opt_(&factory_, &hv_store_.cost_model(), &dw_store_.cost_model(),
           &mover_),
      ledger_(config.sim.background, config.sim.contention),
      fault_plan_(fault::FaultPlan::Resolve(config.sim.fault,
                                            config.expected_sessions)),
      tuner_config_(MakeTunerConfig(config.sim)),
      tuner_(&opt_, tuner_config_),
      whatif_cache_(config.sim.whatif_cache_bytes),
      queue_(config.admission_capacity == 0 ? 1 : config.admission_capacity),
      plan_cache_(config.plan_cache_bytes) {
  const sim::SimConfig& cfg = config_.sim;
  if (config_.wave_size < 1) config_.wave_size = 1;
  // Cache identity: any cost-model knob change is a different planning
  // universe, so it is folded into every plan-cache key.
  cost_epoch_ =
      optimizer::WhatIfCache::EpochOf(cfg.hv, cfg.dw, cfg.transfer);

  // Same observability-gate discipline (and the same concurrent-engine
  // caveat) as MultistoreSimulator::Run.
  if (cfg.metrics && !obs::MetricsOn()) scoped_metrics_.emplace(true);
  if (cfg.trace && !obs::TraceOn()) scoped_trace_.emplace(true);

  if (fault_plan_.Enabled()) {
    injector_storage_.emplace(fault_plan_);
    injector_ = &*injector_storage_;
  }
  if (config_.overload.breaker) breaker_.emplace(config_.overload);
  if (cfg.whatif_cache) {
    whatif_cache_.SetEpoch(
        optimizer::WhatIfCache::EpochOf(cfg.hv, cfg.dw, cfg.transfer));
    tuner_.set_whatif_cache(&whatif_cache_);
  }
  const int threads =
      cfg.threads > 0 ? cfg.threads : ThreadPool::DefaultThreadCount();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  opt_.set_thread_pool(pool_.get());

  report_.variant = cfg.variant;
  report_.variant_name = std::string(sim::SystemVariantToString(cfg.variant));

  if (cfg.variant != sim::SystemVariant::kMsMiso) {
    // The server serves the full multistore; the baseline variants stay
    // simulator-only. Refusing at construction keeps every Submit on the
    // rejected server failing fast with this status.
    fatal_ = Status::InvalidArgument(
        "MisoServer serves the MS-MISO variant only; use "
        "MultistoreSimulator for baseline variants");
    queue_.Close();
    return;
  }

  reorganizer_ = std::make_unique<BackgroundReorganizer>(&tuner_);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  started_ = true;
}

MisoServer::~MisoServer() {
  queue_.Close();
  if (scheduler_.joinable()) scheduler_.join();
}

std::future<SessionResult> MisoServer::Submit(workload::WorkloadQuery query) {
  Session session;
  session.query = std::move(query);
  session.promise = std::make_shared<std::promise<SessionResult>>();
  // miso-lint: allow(L003) runtime-class session-latency stamp, see docs/TELEMETRY.md
  session.admitted_at = std::chrono::steady_clock::now();
  std::shared_ptr<std::promise<SessionResult>> promise = session.promise;
  std::future<SessionResult> future = promise->get_future();

  bool admitted = false;
  int session_id = 0;
  {
    // Id assignment and push under one lock: queue order == id order.
    // Push blocks on backpressure; the scheduler drains without taking
    // this lock, so a blocked push always completes (or the queue closes).
    MutexLock lock(admission_mutex_);
    session.session_id = next_session_id_;
    session_id = session.session_id;
    admitted = queue_.Push(std::move(session));
    if (admitted) next_session_id_ += 1;
  }
  if (!admitted) {
    SessionResult rejected;
    rejected.session_id = session_id;
    rejected.outcome = SessionOutcome::kAborted;
    rejected.status = !started_ && !fatal_.ok()
                          ? fatal_
                          : Status::FailedPrecondition(
                                "server closed: session not admitted");
    promise->set_value(std::move(rejected));
  }
  return future;
}

void MisoServer::Close() { queue_.Close(); }

Result<sim::RunReport> MisoServer::Finish() {
  queue_.Close();
  if (scheduler_.joinable()) scheduler_.join();
  if (!fatal_.ok()) return fatal_;
  if (!finished_) {
    finished_ = true;
    const sim::SimConfig& cfg = config_.sim;
    if (cfg.background.io_demand > 0 || cfg.background.cpu_demand > 0) {
      report_.dw_ticks = ledger_.TickSeries(now_);
      report_.avg_background_latency_s = ledger_.AverageBackgroundLatency(now_);
      report_.background_slowdown = ledger_.BackgroundSlowdown(now_);
    }
    PublishPoolStats(pool_.get());
    const PlanCache::Stats cache_stats = plan_cache_.GetStats();
    report_.plan_cache_hits = cache_stats.hits;
    report_.plan_cache_misses = cache_stats.misses;
    report_.plan_cache_evictions = cache_stats.evictions;
    report_.plan_cache_invalidations = cache_stats.invalidations;
    report_.waves_speculative = waves_speculative_;
    report_.waves_replanned = waves_replanned_;
    {
      MutexLock lock(admission_mutex_);
      report_.sessions_admitted = next_session_id_;
    }
    report_.sessions_shed = sessions_shed_;
    report_.sessions_failed = sessions_failed_;
    report_.breaker_degraded_sessions = breaker_degraded_sessions_;
    if (breaker_) {
      report_.breaker_transitions = breaker_->transitions();
      report_.breaker_open_s = breaker_->OpenSeconds(now_);
    }
    if (obs::MetricsOn()) {
      obs::Metrics()
          .GetGauge(obs::names::kServerAdmissionQueueHighWater)
          ->Max(static_cast<double>(queue_.high_water()));
    }
  }
  if (config_.overload.Enabled()) {
    // V212: every admitted session must land in exactly one terminal
    // bucket on a non-fatal run.
    MISO_RETURN_IF_ERROR(verify::VerifyShedAccounting(
        report_.sessions_admitted, static_cast<int>(report_.queries.size()),
        report_.sessions_shed, report_.sessions_failed));
  }
  return report_;
}

void MisoServer::SchedulerLoop() {
  // Double-buffered wave pipeline: while `cur` reduces serially on this
  // thread, `next` may already be planning/executing speculatively on
  // the worker pool (Speculate). The speculation is joined and
  // fingerprint-validated before `next` becomes current (EnsurePlanned),
  // so reorg boundaries, movement gates, and the serial reduce order all
  // behave exactly as in the unpipelined loop.
  WaveState* cur = &waves_[0];
  WaveState* next = &waves_[1];
  FormWave(cur);
  while (!cur->sessions.empty()) {
    if (pending_boundary_) {
      const int boundary = *pending_boundary_;
      pending_boundary_.reset();
      const Status status = StartBoundaryReorg(boundary);
      if (!status.ok()) {
        Fatal(status);
        return;
      }
    }
    EnsurePlanned(cur);
    Speculate(cur, next);
    // Movement charging happens before any of this wave's sessions
    // reduce: these sessions planned against the flipped design, so the
    // epoch's movement gate must exist before they can wait on it.
    if (in_flight_) {
      const Status status = JoinInFlightReorg();
      if (!status.ok()) {
        Fatal(status);
        return;
      }
    }
    const Status status = ReduceWave(cur);
    if (!status.ok()) {
      Fatal(status);
      return;
    }
    ResetWave(cur);
    std::swap(cur, next);
    if (cur->sessions.empty()) FormWave(cur);
  }
  // Drain epilogue. A boundary pending at shutdown is dropped — the
  // simulator skips a reorganization after the last query the same way.
  // No speculation can be outstanding here: a speculative wave always
  // becomes `cur` at the swap, and the loop only exits on an empty,
  // never-speculated `cur`.
  if (in_flight_) {
    const Status status = JoinInFlightReorg();
    if (!status.ok()) {
      Fatal(status);
      return;
    }
  }
  ExpireGates(/*force=*/true);
}

int MisoServer::WaveSpan() const {
  // Fixed-span waves cut by admission index: a wave never crosses a
  // query-count epoch boundary, so its span — hence its composition —
  // is a pure function of the admission order, never of timing.
  int span = config_.wave_size;
  if (config_.sim.reorg_every > 0) {
    const int to_boundary =
        config_.sim.reorg_every - (next_index_ % config_.sim.reorg_every);
    span = std::min(span, to_boundary);
  }
  return span;
}

void MisoServer::FormWave(WaveState* wave) {
  const int span = WaveSpan();
  wave->sessions.reserve(static_cast<size_t>(span));
  while (static_cast<int>(wave->sessions.size()) < span) {
    std::optional<Session> session = queue_.Pop();
    if (!session) break;
    wave->sessions.push_back(std::move(*session));
    next_index_ += 1;
  }
}

bool MisoServer::TryFormWave(WaveState* wave) {
  // All-or-nothing (full span, or the final partial batch of a closed
  // queue): the batch boundaries TryPopBatch cuts are exactly the ones
  // the blocking FormWave would cut, so speculation never changes wave
  // composition — only when the planning work happens.
  const std::size_t got = queue_.TryPopBatch(
      static_cast<std::size_t>(WaveSpan()), &wave->sessions);
  next_index_ += static_cast<int>(got);
  return got > 0;
}

Status MisoServer::StartBoundaryReorg(int boundary_session) {
  // A reorganization moves views into/out of the DW; during an outage —
  // or while the DW-health breaker has the warehouse resting — it is
  // deferred to the next boundary rather than attempted (mirrors the
  // simulator's skip, evaluated against the boundary session's index).
  if (BreakerOpen() ||
      (injector_ != nullptr && injector_->DwDownForQuery(boundary_session))) {
    report_.reorgs_skipped += 1;
    if (obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kFaultReorgsSkipped)->Increment();
    }
    return Status();
  }
  return config_.online_reorg ? StartOnlineReorg(boundary_session)
                              : StopTheWorldReorg(boundary_session);
}

std::vector<plan::Plan> MisoServer::TuneWindow() const {
  const size_t window = static_cast<size_t>(config_.sim.history_window);
  const size_t start = history_.size() > window ? history_.size() - window : 0;
  return std::vector<plan::Plan>(history_.begin() + static_cast<long>(start),
                                 history_.end());
}

verify::DesignBudgets MisoServer::Budgets() const {
  verify::DesignBudgets budgets;
  budgets.hv_storage = config_.sim.hv_storage_budget;
  budgets.dw_storage = config_.sim.dw_storage_budget;
  budgets.transfer = config_.sim.transfer_budget;
  budgets.discretization = tuner_config_.discretization;
  return budgets;
}

void MisoServer::ChargeMoves(Bytes dw_bytes, Bytes hv_bytes, Seconds start,
                             Seconds* duration) {
  if (dw_bytes > 0) {
    const transfer::TransferBreakdown tb = mover_.ViewTransferToDw(dw_bytes);
    *duration += ledger_.RecordActivity(dw::DwActivityKind::kReorgTransfer,
                                        start + *duration, tb.Total(),
                                        /*io_demand=*/1.3,
                                        /*cpu_demand=*/0.3);
  }
  if (hv_bytes > 0) {
    const transfer::TransferBreakdown tb = mover_.ViewTransferToHv(hv_bytes);
    *duration += ledger_.RecordActivity(dw::DwActivityKind::kReorgTransfer,
                                        start + *duration, tb.Total(),
                                        /*io_demand=*/0.8,
                                        /*cpu_demand=*/0.2);
  }
}

Status MisoServer::StartOnlineReorg(int boundary_session) {
  ReorgRequest request;
  request.reorg_index = report_.reorg_count;
  request.hv = hv_store_.catalog();  // boundary snapshots: the walk's
  request.dw = dw_store_.catalog();  // private copies
  request.window = TuneWindow();
  request.budgets = Budgets();
  request.injector = injector_;
  request.recovery = fault_plan_.recovery;
  std::future<Result<ReorgFlip>> flip_future = request.flip.get_future();
  std::future<Result<ReorgOutcome>> done_future = request.done.get_future();
  reorganizer_->Enqueue(std::move(request));

  // Block on the flip only: tune + journal construction + the crash
  // oracle. The step-at-a-time walk overlaps with the next waves.
  Result<ReorgFlip> flip = flip_future.get();
  if (!flip.ok()) return flip.status();

  InFlightReorg in_flight;
  in_flight.reorg_index = report_.reorg_count;
  in_flight.boundary_session = boundary_session;
  in_flight.start_now = std::max(now_, last_movement_complete_);
  in_flight.crash_before = flip->crash_before;
  in_flight.rolled_back = flip->rolled_back;
  in_flight.planned_to_dw = flip->plan.BytesToDw();
  in_flight.planned_to_hv = flip->plan.BytesToHv();
  in_flight.done = std::move(done_future);
  report_.reorg_count += 1;

  if (!flip->rolled_back) {
    for (const View& v : flip->plan.move_to_dw) in_flight.moved.insert(v.id);
    for (const View& v : flip->plan.move_to_hv) in_flight.moved.insert(v.id);
    // Metadata flip: replay the pristine journal onto the live catalogs,
    // so every post-boundary session plans against the published design —
    // the same plans/costs the stop-the-world cadence would produce. The
    // simulated movement time resolves at the join; sessions reading a
    // moved view wait on its gate.
    tuner::ReorgJournal pristine = std::move(flip->journal);
    MISO_ASSIGN_OR_RETURN(
        const tuner::ReorgJournal::Outcome flipped,
        pristine.Apply(&hv_store_.catalog(), &dw_store_.catalog()));
    (void)flipped;
    if (verify::Enabled()) {
      MISO_RETURN_IF_ERROR(verify::VerifyDesign(
          hv_store_.catalog(), dw_store_.catalog(), Budgets()));
    }
    epoch_ += 1;
    report_.epochs_published += 1;
    // Published flip: views may have left a catalog, ending the
    // monotone-growth window the plan-cache key contract rests on.
    if (config_.plan_cache) plan_cache_.Invalidate();
    if (obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kServerEpochsPublished)
          ->Increment();
    }
  }
  // A pre-known rollback never flips: the live design stays pre-reorg,
  // which is exactly the state the rollback recovery restores — and the
  // plan cache stays valid (nothing moved).

  last_reorg_time_ = now_;
  in_flight_ = std::move(in_flight);
  return Status();
}

Status MisoServer::StopTheWorldReorg(int boundary_session) {
  const sim::SimConfig& cfg = config_.sim;
  ViewCatalog& hv = hv_store_.catalog();
  ViewCatalog& dw = dw_store_.catalog();
  MISO_ASSIGN_OR_RETURN(tuner::ReorgPlan reorg,
                        tuner_.Tune(hv, dw, TuneWindow()));

  Seconds reorg_time = cfg.tune_compute_s;
  Bytes to_dw = reorg.BytesToDw();
  Bytes to_hv = reorg.BytesToHv();
  int steps_applied = 0;
  bool rolled_back = false;
  if (injector_ == nullptr) {
    ChargeMoves(to_dw, to_hv, now_, &reorg_time);
    MISO_RETURN_IF_ERROR(tuner::ApplyReorgPlan(reorg, &hv, &dw));
    steps_applied = static_cast<int>(
        reorg.move_to_dw.size() + reorg.move_to_hv.size() +
        reorg.drop_from_hv.size() + reorg.drop_from_dw.size());
  } else {
    MISO_ASSIGN_OR_RETURN(tuner::ReorgJournal journal,
                          tuner::ReorgJournal::Create(reorg, hv, dw));
    const int crash_before = injector_->ReorgCrashPoint(
        static_cast<uint64_t>(report_.reorg_count), journal.num_entries());
    if (crash_before < 0) {
      ChargeMoves(to_dw, to_hv, now_, &reorg_time);
      MISO_ASSIGN_OR_RETURN(const tuner::ReorgJournal::Outcome outcome,
                            journal.Apply(&hv, &dw));
      steps_applied = outcome.steps;
    } else {
      rolled_back = fault_plan_.recovery == RecoveryPolicy::kRollback;
      MISO_ASSIGN_OR_RETURN(const tuner::ReorgJournal::Outcome partial,
                            journal.Apply(&hv, &dw, crash_before));
      ChargeMoves(partial.bytes_to_dw, partial.bytes_to_hv, now_, &reorg_time);
      reorg_time += fault_plan_.retry.BackoffBefore(2);
      MISO_ASSIGN_OR_RETURN(const tuner::ReorgJournal::Outcome recovery,
                            journal.Recover(fault_plan_.recovery, &hv, &dw));
      ChargeMoves(recovery.bytes_to_dw, recovery.bytes_to_hv, now_,
                  &reorg_time);
      to_dw = partial.bytes_to_dw + recovery.bytes_to_dw;
      to_hv = partial.bytes_to_hv + recovery.bytes_to_hv;
      steps_applied = partial.steps + recovery.steps;
      report_.reorg_crashes += 1;
      if (verify::Enabled()) {
        MISO_RETURN_IF_ERROR(verify::VerifyJournalConsistency(journal, hv, dw));
      }
      if (obs::MetricsOn()) {
        obs::MetricsRegistry& registry = obs::Metrics();
        registry.GetCounter(obs::names::kFaultReorgCrashes)->Increment();
        registry
            .GetCounter(obs::WithLabel(obs::names::kFaultReorgRecoveries,
                                       "policy",
                                       RecoveryPolicyName(fault_plan_.recovery)))
            ->Increment();
        registry
            .GetCounter(obs::WithLabel(
                obs::names::kFaultInjected, "site",
                fault::FaultSiteName(fault::FaultSite::kReorg)))
            ->Increment();
      }
      if (obs::TraceOn()) {
        obs::Emit(obs::TraceEvent(obs::names::kEvFaultReorgRecovery)
                      .Int("reorg_index", report_.reorg_count)
                      .Int("crash_before", crash_before)
                      .Str("policy", RecoveryPolicyName(fault_plan_.recovery))
                      .Int("steps_applied", partial.steps)
                      .Int("steps_recovered", recovery.steps)
                      .Int("bytes_to_dw", static_cast<int64_t>(to_dw))
                      .Int("bytes_to_hv", static_cast<int64_t>(to_hv)));
      }
    }
  }
  if (verify::Enabled() && !rolled_back) {
    MISO_RETURN_IF_ERROR(verify::VerifyDesign(hv, dw, Budgets()));
  }

  report_.bytes_moved_to_dw += to_dw;
  report_.bytes_moved_to_hv += to_hv;
  report_.tune_s += reorg_time;
  report_.reorg_count += 1;
  now_ += reorg_time;
  last_reorg_time_ = now_;
  last_movement_complete_ = now_;

  MovementGate gate;  // never queued: stop-the-world has no overlap
  gate.reorg_index = report_.reorg_count - 1;
  gate.rolled_back = rolled_back;
  gate.duration = reorg_time;
  gate.complete_at = now_;
  gate.charged = reorg_time;  // the whole duration hit the clock
  gate.steps_applied = steps_applied;
  gate.to_dw = to_dw;
  gate.to_hv = to_hv;
  gate.hv_used = hv.used_bytes();
  gate.dw_used = dw.used_bytes();
  if (!rolled_back) {
    epoch_ += 1;
    report_.epochs_published += 1;
    if (config_.plan_cache) plan_cache_.Invalidate();
  } else {
    report_.reorgs_rolled_back += 1;
  }
  gate.epoch = epoch_;
  if (obs::MetricsOn()) {
    obs::MetricsRegistry& registry = obs::Metrics();
    registry.GetCounter(obs::names::kServerReorgSteps)->Add(steps_applied);
    if (!rolled_back) {
      registry.GetCounter(obs::names::kServerEpochsPublished)->Increment();
    } else {
      registry.GetCounter(obs::names::kServerReorgsRolledBack)->Increment();
    }
  }
  EmitEpochTrace(gate, /*overlap_saved_s=*/0);
  ObserveEpoch(gate, boundary_session, reorg_time);
  return Status();
}

void MisoServer::EnsurePlanned(WaveState* wave) {
  // Breaker cooldown first, at the serial head of the wave: the open ->
  // half-open edge is driven purely by the simulated clock, so it lands
  // at a point fixed by the admission order.
  if (breaker_) {
    if (std::optional<DwCircuitBreaker::Edge> edge =
            breaker_->AdvanceTime(now_)) {
      OnBreakerEdge(*edge);
    }
  }
  const size_t n = wave->sessions.size();
  if (wave->slots.size() < n) wave->slots.resize(n);
  bool already_planned = false;
  if (wave->speculative) {
    for (std::future<void>& future : wave->futures) future.get();
    wave->futures.clear();
    wave->speculative = false;
    if (obs::MetricsOn()) {
      // miso-lint: allow(L003) runtime-class pipeline-overlap observation, see docs/TELEMETRY.md
      const auto overlap = std::chrono::steady_clock::now() - wave->dispatched_at;
      obs::Metrics()
          .GetHistogram(obs::names::kServerWavePipelineOverlapMs,
                        obs::MillisBuckets())
          ->Observe(
              std::chrono::duration<double, std::milli>(overlap).count());
    }
    // Accept the speculation iff the live design still fingerprint-
    // matches the frozen snapshot it planned against (no harvest, no
    // flip since dispatch) — then every slot holds exactly what planning
    // against the live catalogs would produce, telemetry included.
    // Otherwise throw all of it away and replan below; the discarded
    // slots never touched any global state (captures defer trace lines,
    // histogram observations, and counter deltas), so a rejected
    // speculation is invisible in every model-class output.
    // A breaker edge since dispatch changed DW availability the same way
    // a design flip changes the catalogs, so it rejects the speculation
    // through the same gate.
    if (wave->planned_hv_fp == hv_store_.catalog().ContentFingerprint() &&
        wave->planned_dw_fp == dw_store_.catalog().ContentFingerprint() &&
        (!breaker_ ||
         wave->planned_breaker_epoch == breaker_->transition_epoch())) {
      already_planned = true;
    } else {
      waves_replanned_ += 1;
      for (size_t i = 0; i < n; ++i) wave->slots[i].Reset();
    }
  }

  // Serial authoritative cache pass, in admission order on the scheduler
  // thread: outage-edge invalidation, then lookup. With speculation
  // accepted this recomputes exactly the decisions `Speculate` peeked
  // (the cache cannot have changed in between — it only mutates here),
  // so hit/miss counts are independent of whether speculation ran.
  const bool cache_on = config_.plan_cache;
  uint64_t hv_fp = 0;
  uint64_t dw_fp = 0;
  if (cache_on) {
    hv_fp = hv_store_.catalog().ContentFingerprint();
    dw_fp = dw_store_.catalog().ContentFingerprint();
  }
  int64_t hits = 0;
  int64_t misses = 0;
  for (size_t i = 0; i < n; ++i) {
    SessionSlot& slot = wave->slots[i];
    const Session& session = wave->sessions[i];
    const int qi = session.session_id;
    slot.dw_down = injector_ != nullptr && injector_->DwDownForQuery(qi);
    slot.breaker_open = BreakerOpen();
    if (cache_on && injector_ != nullptr &&
        (!have_last_dw_down_ || last_dw_down_ != slot.dw_down)) {
      // Degradation-window edge: HV-only plans and normal plans must
      // never alias, so the cache resets wholesale at every edge.
      if (have_last_dw_down_) plan_cache_.Invalidate();
      have_last_dw_down_ = true;
      last_dw_down_ = slot.dw_down;
    }
    // Degraded (outage or breaker-open) sessions never hit/populate the
    // cache; breaker edges invalidate it wholesale in OnBreakerEdge.
    if (!cache_on || slot.dw_down || slot.breaker_open) continue;
    slot.key.query_signature = session.query.plan.signature();
    slot.key.hv_fingerprint = hv_fp;
    slot.key.dw_fingerprint = dw_fp;
    slot.key.cost_epoch = cost_epoch_;
    if (const PlanCache::Entry* entry = plan_cache_.Lookup(slot.key)) {
      hits += 1;
      if (!slot.plan_ready) slot.AdoptEntry(*entry);
    } else {
      misses += 1;
      slot.fill = true;
    }
  }

  if (!already_planned) {
    // The concurrent part: sessions plan (unless cache-hit) and execute
    // against the frozen design into their own slots, while the
    // background thread (if a reorganization is in flight) walks its
    // journal. The catalogs are frozen for the whole fan-out — the
    // scheduler blocks here and is the only mutator.
    const ViewCatalog& hv_views = hv_store_.catalog();
    const ViewCatalog& dw_views = dw_store_.catalog();
    ParallelFor(pool_.get(), static_cast<int>(n), [&](int i) {
      PlanAndExecute(wave->sessions[static_cast<size_t>(i)],
                     &wave->slots[static_cast<size_t>(i)], hv_views, dw_views);
    });
  }

  // Serial insert pass, in admission order: every authoritative miss
  // whose plan was computed successfully becomes an entry.
  int64_t evicted = 0;
  for (size_t i = 0; i < n; ++i) {
    SessionSlot& slot = wave->slots[i];
    if (!slot.fill || !slot.plan_ready) continue;
    PlanCache::Entry entry;
    entry.plan = slot.ms;
    entry.trace_lines = slot.opt_trace_lines;
    entry.histogram_obs = slot.opt_histogram_obs;
    entry.counter_deltas = slot.opt_counter_deltas;
    evicted += plan_cache_.Insert(slot.key, std::move(entry));
  }

  if (obs::MetricsOn() && cache_on) {
    obs::MetricsRegistry& registry = obs::Metrics();
    if (hits > 0) {
      registry.GetCounter(obs::names::kServerPlanCacheHits)->Add(hits);
    }
    if (misses > 0) {
      registry.GetCounter(obs::names::kServerPlanCacheMisses)->Add(misses);
    }
    if (evicted > 0) {
      registry.GetCounter(obs::names::kServerPlanCacheEvictions)->Add(evicted);
    }
  }
}

void MisoServer::Speculate(const WaveState* cur, WaveState* next) {
  if (!config_.pipeline_waves || pool_ == nullptr) return;
  // A query-count boundary right after `cur` will flip the design before
  // `next` runs — planning against the pre-flip catalogs would be
  // guaranteed waste, so don't. (Time-triggered boundaries can't be
  // predicted here; the fingerprint validation at the join catches
  // those, at the cost of one discarded speculation.)
  if (config_.sim.reorg_every > 0 && !cur->sessions.empty() &&
      (cur->sessions.back().session_id + 1) % config_.sim.reorg_every == 0) {
    return;
  }
  if (!TryFormWave(next)) return;

  // Freeze the design: workers read these snapshots (and only these)
  // while the scheduler reduces `cur` — which may harvest views into the
  // live catalogs — and a boundary reorganization may even flip the live
  // design before the join. The fingerprint comparison at the join
  // decides whether the frozen answers are still the live answers.
  next->hv_snapshot = hv_store_.catalog();
  next->dw_snapshot = dw_store_.catalog();
  next->planned_hv_fp = next->hv_snapshot.ContentFingerprint();
  next->planned_dw_fp = next->dw_snapshot.ContentFingerprint();
  next->planned_breaker_epoch = breaker_ ? breaker_->transition_epoch() : 0;

  const size_t n = next->sessions.size();
  if (next->slots.size() < n) next->slots.resize(n);
  for (size_t i = 0; i < n; ++i) {
    SessionSlot& slot = next->slots[i];
    slot.Reset();
    const int qi = next->sessions[i].session_id;
    slot.dw_down = injector_ != nullptr && injector_->DwDownForQuery(qi);
    slot.breaker_open = BreakerOpen();
    if (config_.plan_cache && !slot.dw_down && !slot.breaker_open) {
      // Uncounted peek: the authoritative (counted) lookup happens in
      // EnsurePlanned's serial pass, and returns the same answer — the
      // cache only mutates on this thread, and not between here and
      // there.
      PlanCacheKey key;
      key.query_signature = next->sessions[i].query.plan.signature();
      key.hv_fingerprint = next->planned_hv_fp;
      key.dw_fingerprint = next->planned_dw_fp;
      key.cost_epoch = cost_epoch_;
      if (const PlanCache::Entry* entry = plan_cache_.Peek(key)) {
        slot.AdoptEntry(*entry);
      }
    }
  }

  // miso-lint: allow(L003) runtime-class pipeline-overlap stamp, see docs/TELEMETRY.md
  next->dispatched_at = std::chrono::steady_clock::now();
  next->futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Session* session = &next->sessions[i];
    SessionSlot* slot = &next->slots[i];
    const ViewCatalog* hv_views = &next->hv_snapshot;
    const ViewCatalog* dw_views = &next->dw_snapshot;
    next->futures.push_back(pool_->Submit([this, session, slot, hv_views,
                                           dw_views] {
      PlanAndExecute(*session, slot, *hv_views, *dw_views);
    }));
  }
  next->speculative = true;
  waves_speculative_ += 1;
}

Status MisoServer::ReduceWave(WaveState* wave) {
  // V211 latches inside the breaker on an illegal edge (a server bug,
  // never an operator condition); escalate it to a run-level fatal here.
  if (breaker_ && !breaker_->status().ok()) return breaker_->status();
  const size_t n = wave->sessions.size();
  const size_t completed_before = report_.queries.size();
  for (size_t i = 0; i < n; ++i) {
    Session& session = wave->sessions[i];
    MISO_RETURN_IF_ERROR(ReduceSession(&session, &wave->slots[i]));
    const int qi = session.session_id;
    const bool query_trigger = config_.sim.reorg_every > 0 &&
                               (qi + 1) % config_.sim.reorg_every == 0;
    const bool time_trigger =
        config_.sim.reorg_every_seconds > 0 &&
        now_ - last_reorg_time_ >= config_.sim.reorg_every_seconds;
    // Deferred boundary: the reorganization starts only once a
    // post-boundary session actually arrives (next FormWave), so a
    // trailing boundary is skipped exactly like the simulator's.
    if (!pending_boundary_ && (query_trigger || time_trigger)) {
      pending_boundary_ = qi;
    }
  }
  report_.waves += 1;
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kServerWaves)->Increment();
  }
  // Stuck-wave watchdog, in simulated/admission terms only: a wave that
  // reduced sessions without completing a single one (everything shed or
  // failed) counts as stuck, and a configured streak of them fails fast
  // with a diagnosable verdict instead of grinding to the drain.
  if (config_.overload.watchdog_stuck_waves > 0 && n > 0) {
    if (report_.queries.size() == completed_before) {
      consecutive_stuck_waves_ += 1;
    } else {
      consecutive_stuck_waves_ = 0;
    }
    if (consecutive_stuck_waves_ >= config_.overload.watchdog_stuck_waves) {
      return verify::MakeVerifyError(
          verify::VerifyCode::kServerWaveStuck,
          "watchdog: " + std::to_string(consecutive_stuck_waves_) +
              " consecutive waves (through wave " +
              std::to_string(report_.waves) +
              ") reduced without one completed session; shed=" +
              std::to_string(sessions_shed_) +
              " failed=" + std::to_string(sessions_failed_));
    }
  }
  return Status();
}

void MisoServer::ResetWave(WaveState* wave) {
  wave->sessions.clear();
  for (SessionSlot& slot : wave->slots) slot.Reset();
  wave->futures.clear();
  wave->speculative = false;
  wave->planned_hv_fp = 0;
  wave->planned_dw_fp = 0;
  wave->planned_breaker_epoch = 0;
}

void MisoServer::PlanAndExecute(const Session& session, SessionSlot* slot,
                                const ViewCatalog& hv_views,
                                const ViewCatalog& dw_views) const {
  // Capture everything the layers below emit on this worker — trace
  // lines, FP histogram observations, and counter deltas; the reducer
  // replays them at the session's serial point (or drops them wholesale
  // if this was a rejected speculation). Planning and execution capture
  // separately: the planning capture is what a plan-cache entry stores,
  // so a future hit replays byte-identical optimizer telemetry.
  const int qi = session.session_id;

  if (!slot->plan_ready) {
    obs::ScopedTraceCapture trace_capture;
    obs::ScopedHistogramCapture histogram_capture;
    obs::ScopedCounterCapture counter_capture;
    optimizer::OptimizeOptions options;
    options.dw_available = !slot->dw_down && !slot->breaker_open;
    Result<MultistorePlan> ms =
        opt_.Optimize(session.query.plan, dw_views, hv_views, options);
    slot->opt_trace_lines = trace_capture.TakeLines();
    slot->opt_histogram_obs = histogram_capture.TakeObservations();
    slot->opt_counter_deltas = counter_capture.TakeDeltas();
    if (!ms.ok()) {
      slot->status = ms.status();
      return;
    }
    slot->ms = std::move(*ms);
    slot->plan_ready = true;
  }

  obs::ScopedTraceCapture trace_capture;
  obs::ScopedHistogramCapture histogram_capture;
  obs::ScopedCounterCapture counter_capture;
  slot->status = [&]() -> Status {
    std::vector<NodePtr> hv_roots;
    if (slot->ms.HvOnly()) {
      hv_roots.push_back(slot->ms.executed.root());
    } else {
      for (const NodePtr& cut : slot->ms.cut_inputs) {
        if (cut->kind() != OpKind::kScan && cut->kind() != OpKind::kViewScan) {
          hv_roots.push_back(cut);
        }
      }
    }
    // Scratch ids only; the reducer remaps them in admission order. The
    // creation time is restamped there too (simulated `now` is unknown
    // on the worker). Harvest dedup reads the frozen catalog (`hv_views`)
    // rather than the store's live one — under speculation the live
    // catalog may be mutating.
    uint64_t scratch_id =
        kScratchIdBase + static_cast<uint64_t>(qi) * kScratchIdStride;
    for (size_t ri = 0; ri < hv_roots.size(); ++ri) {
      MISO_ASSIGN_OR_RETURN(
          hv::HvExecution exec,
          hv_store_.Execute(hv_roots[ri], qi, /*now=*/0, &scratch_id,
                            /*exclude_signature=*/session.query.plan.signature(),
                            injector_, &fault_plan_.retry,
                            HashCombine(static_cast<uint64_t>(qi) + 1,
                                        static_cast<uint64_t>(ri)),
                            &hv_views));
      for (View& v : exec.produced_views) {
        slot->produced.push_back(std::move(v));
      }
      FoldFault(exec.fault, &slot->hv_fault);
    }

    if (injector_ != nullptr && slot->ms.transferred_bytes > 0) {
      slot->ws = mover_.WorkingSetTransferFaulted(
          slot->ms.transferred_bytes, injector_,
          HashCombine(0x77735f78666572ULL,  // "ws_xfer"
                      static_cast<uint64_t>(qi) + 1),
          fault_plan_.retry);
      if (slot->ws.exhausted) {
        return fault::ExhaustedError(fault::FaultSite::kTransfer,
                                     static_cast<uint64_t>(qi),
                                     fault_plan_.retry.max_attempts);
      }
    }
    CollectViewUses(slot->ms.executed, &slot->hv_used, &slot->dw_used);
    return Status();
  }();

  slot->trace_lines = trace_capture.TakeLines();
  slot->histogram_obs = histogram_capture.TakeObservations();
  slot->counter_deltas = counter_capture.TakeDeltas();
}

Status MisoServer::JoinInFlightReorg() {
  InFlightReorg reorg = std::move(*in_flight_);
  in_flight_.reset();
  Result<ReorgOutcome> outcome = reorg.done.get();
  if (!outcome.ok()) return outcome.status();

  // Serial replay of the background thread's telemetry: the tuner's
  // trace lines and FP histogram observations land here, at a point
  // fixed by the admission order.
  obs::ScopedHistogramCapture::Replay(outcome->histogram_obs);
  for (std::string& line : outcome->trace_lines) {
    obs::Trace().Append(std::move(line));
  }

  const bool crashed = reorg.crash_before >= 0;
  Seconds duration = config_.sim.tune_compute_s;
  ChargeMoves(outcome->partial.bytes_to_dw, outcome->partial.bytes_to_hv,
              reorg.start_now, &duration);
  Bytes to_dw = outcome->partial.bytes_to_dw;
  Bytes to_hv = outcome->partial.bytes_to_hv;
  if (crashed) {
    duration += fault_plan_.retry.BackoffBefore(2);
    ChargeMoves(outcome->recovery.bytes_to_dw, outcome->recovery.bytes_to_hv,
                reorg.start_now, &duration);
    to_dw += outcome->recovery.bytes_to_dw;
    to_hv += outcome->recovery.bytes_to_hv;
    report_.reorg_crashes += 1;
    if (obs::MetricsOn()) {
      obs::MetricsRegistry& registry = obs::Metrics();
      registry.GetCounter(obs::names::kFaultReorgCrashes)->Increment();
      registry
          .GetCounter(obs::WithLabel(obs::names::kFaultReorgRecoveries,
                                     "policy",
                                     RecoveryPolicyName(fault_plan_.recovery)))
          ->Increment();
      registry
          .GetCounter(
              obs::WithLabel(obs::names::kFaultInjected, "site",
                             fault::FaultSiteName(fault::FaultSite::kReorg)))
          ->Increment();
    }
    if (obs::TraceOn()) {
      obs::Emit(obs::TraceEvent(obs::names::kEvFaultReorgRecovery)
                    .Int("reorg_index", reorg.reorg_index)
                    .Int("crash_before", reorg.crash_before)
                    .Str("policy", RecoveryPolicyName(fault_plan_.recovery))
                    .Int("steps_applied", outcome->partial.steps)
                    .Int("steps_recovered", outcome->recovery.steps)
                    .Int("bytes_to_dw", static_cast<int64_t>(to_dw))
                    .Int("bytes_to_hv", static_cast<int64_t>(to_hv)));
    }
  }
  report_.bytes_moved_to_dw += to_dw;
  report_.bytes_moved_to_hv += to_hv;
  report_.tune_s += duration;
  last_movement_complete_ = reorg.start_now + duration;

  MovementGate gate;
  gate.reorg_index = reorg.reorg_index;
  gate.epoch = epoch_;
  gate.rolled_back = reorg.rolled_back;
  gate.duration = duration;
  // A rolled-back reorganization publishes nothing: no session can read
  // a moved view, so its gate expires immediately and the whole duration
  // counts as overlap saved.
  gate.complete_at =
      reorg.rolled_back ? reorg.start_now : reorg.start_now + duration;
  if (!reorg.rolled_back) gate.moved = std::move(reorg.moved);
  gate.steps_applied = outcome->partial.steps + outcome->recovery.steps;
  gate.to_dw = to_dw;
  gate.to_hv = to_hv;
  gate.hv_used = hv_store_.catalog().used_bytes();
  gate.dw_used = dw_store_.catalog().used_bytes();
  if (reorg.rolled_back) {
    report_.reorgs_rolled_back += 1;
    if (obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kServerReorgsRolledBack)
          ->Increment();
    }
  }
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kServerReorgSteps)
        ->Add(gate.steps_applied);
  }
  ObserveEpoch(gate, reorg.boundary_session, duration);
  gates_.push_back(std::move(gate));
  return Status();
}

Status MisoServer::ReduceSession(Session* session, SessionSlot* slot) {
  const int qi = session->session_id;

  // Load shedding first, before any of this session's telemetry or
  // clock advance lands: the decision reads only the simulated clock,
  // the session's deterministic arrival time, and its priority class,
  // so it is a pure function of the admission order. A shed session's
  // worker output (it already planned/executed into the slot) is
  // dropped wholesale, exactly like a rejected speculation.
  if (config_.overload.admission_deadlines) {
    const Seconds deadline = DeadlineFor(*session);
    const Seconds queue_wait = now_ - ArrivalTime(qi);
    if (deadline > 0 && queue_wait > deadline) {
      ShedSession(session, slot, queue_wait, deadline);
      return Status();
    }
  }

  // Worker-captured telemetry first: planning events (possibly replayed
  // from a plan-cache entry — byte-identical either way), then execution
  // events, preceding the session's own record exactly as they would in
  // a serial run. Counter deltas replay here too, so model-class
  // counters only ever count accepted work, in admission order.
  obs::ScopedCounterCapture::Replay(slot->opt_counter_deltas);
  obs::ScopedHistogramCapture::Replay(slot->opt_histogram_obs);
  for (std::string& line : slot->opt_trace_lines) {
    obs::Trace().Append(std::move(line));
  }
  obs::ScopedCounterCapture::Replay(slot->counter_deltas);
  obs::ScopedHistogramCapture::Replay(slot->histogram_obs);
  for (std::string& line : slot->trace_lines) {
    obs::Trace().Append(std::move(line));
  }

  if (!slot->status.ok()) {
    // A session-level failure (fault-retry budget ran dry) fails only
    // this session's future; the server keeps serving. This is the one
    // deliberate divergence from the simulator, which aborts the run.
    if (injector_ != nullptr && obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kFaultExhausted)->Increment();
    }
    sessions_failed_ += 1;
    if (config_.overload.Enabled() && obs::MetricsOn()) {
      obs::Metrics().GetCounter(obs::names::kServerSessionsFailed)
          ->Increment();
    }
    // An exhausted DW path is the strongest health signal there is —
    // the breaker hears about it even though the session died on it.
    if (breaker_) {
      const bool dw_contact =
          slot->plan_ready && !slot->ms.HvOnly() && !slot->dw_down;
      const bool dw_faulted = slot->ws.injected > 0 || slot->ws.exhausted;
      if (std::optional<DwCircuitBreaker::Edge> edge =
              breaker_->RecordOutcome(dw_contact, dw_faulted, now_)) {
        OnBreakerEdge(*edge);
      }
    }
    FailSession(session, slot->status, SessionOutcome::kFailed);
    return Status();
  }

  sim::QueryRecord record;
  record.index = qi;
  record.name = session->query.plan.query_name();
  record.ops_total = session->query.plan.NumOperators();
  record.epoch = epoch_;
  record.degraded = slot->dw_down || slot->breaker_open;
  record.breaker_degraded = slot->breaker_open && !slot->dw_down;
  if (record.breaker_degraded) breaker_degraded_sessions_ += 1;
  if (record.degraded) {
    report_.degraded_queries += 1;
    if (obs::MetricsOn()) {
      // kFaultDwOutageQueries stays outage-specific; breaker-degraded
      // sessions count only under the server-wide degradation counter.
      if (slot->dw_down) {
        obs::Metrics().GetCounter(obs::names::kFaultDwOutageQueries)
            ->Increment();
      }
      obs::Metrics().GetCounter(obs::names::kServerSessionsDegraded)
          ->Increment();
    }
  }

  MultistorePlan& ms = slot->ms;
  record.breakdown = ms.cost;
  record.transferred_bytes = ms.transferred_bytes;
  record.ops_dw = static_cast<int>(ms.dw_side.size());

  // HV-job fault accounting (merged across the session's jobs).
  if (slot->hv_fault.injected > 0) {
    record.fault_injected += slot->hv_fault.injected;
    record.fault_retries += slot->hv_fault.retries;
    record.fault_wasted_s += slot->hv_fault.wasted_s;
    record.fault_backoff_s += slot->hv_fault.backoff_s;
    if (obs::MetricsOn()) {
      obs::Metrics()
          .GetCounter(obs::WithLabel(
              obs::names::kFaultInjected, "site",
              fault::FaultSiteName(fault::FaultSite::kHvJob)))
          ->Add(slot->hv_fault.injected);
    }
  }
  record.breakdown.hv_exec_s += record.fault_wasted_s;

  // Working-set transfer faults (already decided on the worker).
  const transfer::FaultedTransfer& ws = slot->ws;
  if (ws.injected > 0 || ws.retries > 0 || ws.wasted_dump_s > 0 ||
      ws.backoff_s > 0) {
    record.breakdown.dump_s += ws.wasted_dump_s;
    record.fault_injected += ws.injected;
    record.fault_retries += ws.retries;
    record.fault_wasted_s += ws.wasted_dump_s + ws.wasted_rest_s;
    record.fault_backoff_s += ws.backoff_s;
    if (obs::MetricsOn() && ws.injected > 0) {
      obs::MetricsRegistry& registry = obs::Metrics();
      if (ws.injected_stream > 0) {
        registry
            .GetCounter(obs::WithLabel(
                obs::names::kFaultInjected, "site",
                fault::FaultSiteName(fault::FaultSite::kTransfer)))
            ->Add(ws.injected_stream);
      }
      if (ws.injected_load > 0) {
        registry
            .GetCounter(obs::WithLabel(
                obs::names::kFaultInjected, "site",
                fault::FaultSiteName(fault::FaultSite::kDwLoad)))
            ->Add(ws.injected_load);
      }
    }
  }

  // Movement gate: a session whose executed plan reads a view that is
  // still physically in motion waits (simulated time) for the movement
  // to complete; everyone else overlaps with it.
  Seconds wait = 0;
  MovementGate* binding = nullptr;
  for (MovementGate& gate : gates_) {
    if (gate.complete_at <= now_ || gate.moved.empty()) continue;
    bool reads_moved = false;
    for (ViewId id : slot->hv_used) {
      if (gate.moved.count(id) > 0) {
        reads_moved = true;
        break;
      }
    }
    if (!reads_moved) {
      for (ViewId id : slot->dw_used) {
        if (gate.moved.count(id) > 0) {
          reads_moved = true;
          break;
        }
      }
    }
    if (reads_moved && gate.complete_at - now_ > wait) {
      wait = gate.complete_at - now_;
      binding = &gate;
    }
  }
  if (binding != nullptr) binding->charged += wait;
  record.reorg_wait_s = wait;
  record.start_time = now_;

  const Seconds begin = now_ + wait;
  Seconds exec_time = record.breakdown.hv_exec_s + record.breakdown.dump_s;
  if (ms.cost.transfer_load_s + ws.wasted_rest_s > 0) {
    const Seconds stretched = ledger_.RecordActivity(
        dw::DwActivityKind::kWorkingSetTransfer, begin + exec_time,
        ms.cost.transfer_load_s + ws.wasted_rest_s,
        /*io_demand=*/1.2, /*cpu_demand=*/0.3);
    record.breakdown.transfer_load_s = stretched;
    exec_time += stretched;
  }
  if (ms.cost.dw_exec_s > 0) {
    const Seconds stretched = ledger_.RecordActivity(
        dw::DwActivityKind::kQueryExec, begin + exec_time, ms.cost.dw_exec_s,
        /*io_demand=*/0.25, /*cpu_demand=*/0.35);
    record.breakdown.dw_exec_s = stretched;
    exec_time += stretched;
  }
  exec_time += record.fault_backoff_s;
  now_ = begin + exec_time;
  record.completion_time = now_;

  report_.hv_exe_s += record.breakdown.hv_exec_s;
  report_.dw_exe_s += record.breakdown.dw_exec_s;
  report_.transfer_s +=
      record.breakdown.dump_s + record.breakdown.transfer_load_s;

  // Harvest: remap scratch ids in admission order and restamp creation
  // times. The skip decision is computed against the catalog state
  // *before* this session's own additions — a wave-mate that already
  // harvested the same signature wins (exactly what the serial Execute
  // filter would have done), while within-session duplicates are kept,
  // as the simulator keeps them.
  std::vector<bool> skip(slot->produced.size(), false);
  for (size_t i = 0; i < slot->produced.size(); ++i) {
    skip[i] =
        hv_store_.catalog().FindExact(slot->produced[i].signature).has_value();
  }
  for (size_t i = 0; i < slot->produced.size(); ++i) {
    if (skip[i]) continue;
    View& v = slot->produced[i];
    v.id = next_view_id_++;
    v.created_at = record.start_time;
    MISO_RETURN_IF_ERROR(hv_store_.catalog().AddUnchecked(std::move(v)));
  }

  record.views_used = static_cast<int>(slot->hv_used.size() +
                                       slot->dw_used.size());
  for (ViewId id : slot->hv_used) hv_store_.catalog().TouchView(id, qi);
  for (ViewId id : slot->dw_used) dw_store_.catalog().TouchView(id, qi);

  // Telemetry at the serial point: the record is complete and `now_` has
  // advanced past the session.
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kServerSessions)->Increment();
  }
  if (obs::TraceOn()) {
    obs::Emit(obs::TraceEvent(obs::names::kEvServerSession)
                  .Int("session", qi)
                  .Int("epoch", record.epoch)
                  .Str("variant", report_.variant_name)
                  .Bool("degraded", record.degraded)
                  .Double("hv_exec_s", record.breakdown.hv_exec_s)
                  .Double("dump_s", record.breakdown.dump_s)
                  .Double("transfer_load_s", record.breakdown.transfer_load_s)
                  .Double("dw_exec_s", record.breakdown.dw_exec_s)
                  .Double("total_s", record.breakdown.Total())
                  .Int("views_used", record.views_used));
  }
  if (injector_ != nullptr) {
    if (obs::MetricsOn() && record.fault_injected > 0) {
      obs::MetricsRegistry& registry = obs::Metrics();
      registry.GetCounter(obs::names::kFaultRetries)
          ->Add(record.fault_retries);
      registry
          .GetHistogram(obs::names::kFaultRetryBackoffSeconds,
                        obs::SecondsBuckets())
          ->Observe(record.fault_backoff_s);
      registry
          .GetHistogram(obs::names::kFaultRetryAttempts, obs::CountBuckets())
          ->Observe(static_cast<double>(record.fault_injected));
    }
    if (obs::TraceOn() && (record.fault_injected > 0 || record.degraded)) {
      obs::Emit(obs::TraceEvent(obs::names::kEvFaultQuery)
                    .Int("index", record.index)
                    .Bool("degraded", record.degraded)
                    .Int("injected", record.fault_injected)
                    .Int("retries", record.fault_retries)
                    .Double("wasted_s", record.fault_wasted_s)
                    .Double("backoff_s", record.fault_backoff_s));
    }
  }
  report_.fault_injected += record.fault_injected;
  report_.fault_retries += record.fault_retries;
  report_.fault_wasted_s += record.fault_wasted_s;
  report_.fault_backoff_s += record.fault_backoff_s;

  // DW-health evidence: sessions whose plan actually touched the
  // warehouse report whether the DW path (transfer / load sites, never
  // HV job faults) injected failures. Degraded sessions ran HV-only and
  // carry no evidence. Fed at the serial reduce point against the
  // simulated clock, so every breaker edge is model-class.
  if (breaker_) {
    const bool dw_contact = !ms.HvOnly() && !record.degraded;
    const bool dw_faulted = slot->ws.injected > 0 || slot->ws.exhausted;
    if (std::optional<DwCircuitBreaker::Edge> edge =
            breaker_->RecordOutcome(dw_contact, dw_faulted, now_)) {
      OnBreakerEdge(*edge);
    }
  }

  history_.push_back(session->query.plan);

  // Server-level observer: a non-OK verdict fails this session and
  // everything after it (the caller escalates to Fatal; this session's
  // promise is still unresolved and fails there).
  if (config_.reduce_observer) {
    MISO_RETURN_IF_ERROR(config_.reduce_observer(record));
  }
  report_.queries.push_back(record);

  if (obs::MetricsOn()) {
    // miso-lint: allow(L003) runtime-class session-latency observation, see docs/TELEMETRY.md
    const auto elapsed = std::chrono::steady_clock::now() - session->admitted_at;
    obs::Metrics()
        .GetHistogram(obs::names::kServerSessionLatencyMs, obs::MillisBuckets())
        ->Observe(std::chrono::duration<double, std::milli>(elapsed).count());
  }

  SessionResult result;
  result.session_id = qi;
  result.epoch = record.epoch;
  result.record = std::move(record);
  session->promise->set_value(std::move(result));
  session->promise.reset();

  // Gates this session's clock advance crossed expire now (emitting
  // their `server.epoch` trace line with the final overlap figure).
  ExpireGates(/*force=*/false);
  return Status();
}

void MisoServer::ExpireGates(bool force) {
  // `complete_at` is monotone across gates (each movement starts no
  // earlier than the previous one completed), so front-popping suffices.
  while (!gates_.empty() && (force || gates_.front().complete_at <= now_)) {
    const MovementGate& gate = gates_.front();
    const Seconds saved = std::max<Seconds>(0, gate.duration - gate.charged);
    overlap_saved_total_ += saved;
    report_.reorg_overlap_saved_s = overlap_saved_total_;
    if (obs::MetricsOn()) {
      obs::Metrics().GetGauge(obs::names::kServerOverlapSavedSeconds)
          ->Set(overlap_saved_total_);
    }
    EmitEpochTrace(gate, saved);
    gates_.erase(gates_.begin());
  }
}

void MisoServer::EmitEpochTrace(const MovementGate& gate,
                                Seconds overlap_saved_s) {
  if (!obs::TraceOn()) return;
  obs::Emit(obs::TraceEvent(obs::names::kEvServerEpoch)
                .Int("epoch", gate.epoch)
                .Int("reorg_index", gate.reorg_index)
                .Int("steps_applied", gate.steps_applied)
                .Bool("rolled_back", gate.rolled_back)
                .Int("bytes_to_dw", static_cast<int64_t>(gate.to_dw))
                .Int("bytes_to_hv", static_cast<int64_t>(gate.to_hv))
                .Int("hv_used_bytes", static_cast<int64_t>(gate.hv_used))
                .Int("dw_used_bytes", static_cast<int64_t>(gate.dw_used))
                .Double("overlap_saved_s", overlap_saved_s));
}

void MisoServer::ObserveEpoch(const MovementGate& gate, int boundary_session,
                              Seconds duration) {
  if (!config_.epoch_observer) return;
  EpochSnapshot snapshot;
  snapshot.epoch = gate.epoch;
  snapshot.reorg_index = gate.reorg_index;
  snapshot.boundary_session = boundary_session;
  snapshot.rolled_back = gate.rolled_back;
  snapshot.steps_applied = gate.steps_applied;
  snapshot.moved_to_dw = gate.to_dw;
  snapshot.moved_to_hv = gate.to_hv;
  snapshot.hv_used = hv_store_.catalog().used_bytes();
  snapshot.dw_used = dw_store_.catalog().used_bytes();
  for (const View& v : hv_store_.catalog().AllViews()) {
    snapshot.hv_ids.push_back(v.id);
  }
  for (const View& v : dw_store_.catalog().AllViews()) {
    snapshot.dw_ids.push_back(v.id);
  }
  snapshot.reorg_duration_s = duration;
  config_.epoch_observer(snapshot);
}

void MisoServer::FailSession(Session* session, const Status& status,
                             SessionOutcome outcome) {
  if (!session->promise) return;
  SessionResult result;
  result.session_id = session->session_id;
  result.epoch = epoch_;
  result.status = status;
  result.outcome = outcome;
  session->promise->set_value(std::move(result));
  session->promise.reset();
}

Seconds MisoServer::ArrivalTime(int session_id) const {
  // Simulated arrival: session i arrives at i * interval. With the
  // default interval 0 every session arrives at t=0 and "queue wait" is
  // the simulated completion clock itself.
  return config_.overload.arrival_interval_s * session_id;
}

Seconds MisoServer::DeadlineFor(const Session& session) const {
  const OverloadConfig& overload = config_.overload;
  if (overload.classes.empty()) return 0;  // one implicit class, no deadline
  int cls = 0;
  if (overload.classifier) {
    cls = overload.classifier(session.query, session.session_id);
  }
  cls = std::clamp(cls, 0, static_cast<int>(overload.classes.size()) - 1);
  return overload.classes[static_cast<size_t>(cls)].deadline_s;
}

void MisoServer::ShedSession(Session* session, SessionSlot* slot,
                             Seconds wait, Seconds deadline) {
  // The slot's captured telemetry is deliberately dropped — a shed
  // session is invisible in every model-class output except the shed
  // count itself.
  (void)slot;
  sessions_shed_ += 1;
  if (obs::MetricsOn()) {
    obs::Metrics().GetCounter(obs::names::kServerSessionsShed)->Increment();
  }
  SessionResult result;
  result.session_id = session->session_id;
  result.epoch = epoch_;
  result.outcome = SessionOutcome::kShed;
  result.status = Status::OutOfBudget(
      "session " + std::to_string(session->session_id) +
      " shed: simulated queue wait " + std::to_string(wait) +
      "s exceeded its class deadline " + std::to_string(deadline) + "s");
  session->promise->set_value(std::move(result));
  session->promise.reset();
}

bool MisoServer::BreakerOpen() const {
  return breaker_.has_value() && breaker_->state() == BreakerState::kOpen;
}

void MisoServer::OnBreakerEdge(const DwCircuitBreaker::Edge& edge) {
  // Every edge flips DW availability for planning, so cached plans from
  // the previous regime must never serve the new one — wholesale
  // invalidation, exactly like a DW-outage degradation edge.
  if (config_.plan_cache) plan_cache_.Invalidate();
  if (obs::MetricsOn()) {
    obs::MetricsRegistry& registry = obs::Metrics();
    registry.GetCounter(obs::names::kServerBreakerTransitions)->Increment();
    registry.GetGauge(obs::names::kServerBreakerOpenMs)
        ->Set(breaker_->OpenSeconds(edge.at) * 1000.0);
  }
  if (obs::TraceOn()) {
    obs::Emit(obs::TraceEvent(obs::names::kEvServerBreaker)
                  .Str("from", BreakerStateName(edge.from))
                  .Str("to", BreakerStateName(edge.to))
                  .Int("failures", edge.failures)
                  .Double("at_s", edge.at)
                  .Double("open_s", breaker_->OpenSeconds(edge.at)));
  }
}

void MisoServer::Fatal(const Status& status) {
  fatal_ = status;
  queue_.Close();
  for (WaveState& wave : waves_) {
    // Drain any speculative dispatch first: workers must finish writing
    // their slots (and release the frozen snapshots) before the buffers
    // are failed, so a fatal mid-pipeline never races or leaks a future.
    for (std::future<void>& future : wave.futures) future.get();
    wave.futures.clear();
    wave.speculative = false;
    // Already-reduced sessions hold a null promise and are skipped.
    for (Session& session : wave.sessions) FailSession(&session, status);
    wave.sessions.clear();
  }
  while (std::optional<Session> session = queue_.Pop()) {
    FailSession(&*session, status);
  }
}

}  // namespace miso::server
