#ifndef MISO_SERVER_REPLAY_H_
#define MISO_SERVER_REPLAY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "server/miso_server.h"

namespace miso::server {

/// Drives `queries` through a `MisoServer` in order: submits every
/// session (blocking on admission backpressure), closes admission, and
/// returns the run report with records in admission order. Admission is
/// closed and every future drained on every exit path; a fatal `Finish`
/// takes precedence. Otherwise, if any session failed, the error of the
/// lowest-indexed failing session is returned — the same error a serial
/// simulator run would have aborted with — except that with overload
/// protection enabled (`config.overload`), shed and retry-exhausted
/// sessions are terminal per-session outcomes and the run still
/// completes, reporting them in `sessions_shed` / `sessions_failed`.
Result<sim::RunReport> ReplayWorkload(
    const relation::Catalog* catalog, const ServerConfig& config,
    const std::vector<workload::WorkloadQuery>& queries);

/// Generates the paper's evolutionary analyst workload and replays it
/// through the server (the online counterpart of `sim::RunPaperWorkload`).
Result<sim::RunReport> ReplayPaperWorkload(const relation::Catalog* catalog,
                                           const ServerConfig& config,
                                           uint64_t workload_seed = 42);

}  // namespace miso::server

#endif  // MISO_SERVER_REPLAY_H_
