#ifndef MISO_SERVER_SESSION_H_
#define MISO_SERVER_SESSION_H_

#include <chrono>
#include <future>
#include <memory>

#include "common/status.h"
#include "sim/report.h"
#include "workload/evolutionary.h"

namespace miso::server {

/// Terminal disposition of a session. With overload protection enabled
/// (DESIGN.md §16), `kShed` and `kFailed` are *per-session* terminal
/// states — the run keeps serving — while `kAborted` marks sessions
/// taken down by a run-level fatal (scheduler error, server shutdown).
enum class SessionOutcome {
  kCompleted = 0,  // answered; `record` is valid
  kShed = 1,       // load-shed: deadline exceeded at reduce time
  kFailed = 2,     // its own fault-retry budget ran dry
  kAborted = 3,    // collateral of a run-level fatal or rejected admission
};

/// Outcome of one query session, delivered through the future returned
/// by `MisoServer::Submit`. The record carries the same anatomy a
/// simulator `QueryRecord` would (simulated start/completion times,
/// cost breakdown, fault bookkeeping), plus the design epoch the session
/// planned against — a session always sees one journal-consistent design
/// snapshot, never a half-applied reorganization.
struct SessionResult {
  int session_id = 0;
  /// Design epoch in effect when the session was planned (== number of
  /// reorganizations published before it).
  int epoch = 0;
  /// Non-completed sessions (shed, retry budget dry, aborted) carry the
  /// error here; `record` is then meaningless.
  Status status;
  SessionOutcome outcome = SessionOutcome::kCompleted;
  sim::QueryRecord record;
};

/// One admitted query session: the workload query, its admission index
/// (assigned under the admission lock, so queue order == index order),
/// and the promise the serial reducer fulfils.
struct Session {
  int session_id = 0;
  workload::WorkloadQuery query;
  /// Shared so `Submit` keeps a handle across the queue push: if the
  /// queue was closed (the push drops the item), the submitter can still
  /// fail the future instead of breaking the promise. Reset after
  /// fulfilment — a null promise marks an already-resolved session.
  std::shared_ptr<std::promise<SessionResult>> promise;
  /// Wall-clock admission stamp for the runtime-class
  /// `miso.server.session_latency_ms` histogram.
  // miso-lint: allow(L003) runtime-class session-latency stamp, see docs/TELEMETRY.md
  std::chrono::steady_clock::time_point admitted_at;
};

}  // namespace miso::server

#endif  // MISO_SERVER_SESSION_H_
