#include "server/plan_cache.h"

#include <utility>

#include "common/hash.h"

namespace miso::server {

std::size_t PlanCacheKeyHash::operator()(const PlanCacheKey& key) const {
  uint64_t h = key.query_signature;
  h = HashCombine(h, key.hv_fingerprint);
  h = HashCombine(h, key.dw_fingerprint);
  h = HashCombine(h, key.cost_epoch);
  return static_cast<std::size_t>(h);
}

Bytes PlanCache::EntryBytes(const Entry& entry) {
  Bytes bytes = kEntryBaseBytes;
  for (const std::string& line : entry.trace_lines) {
    bytes += static_cast<Bytes>(line.size()) + sizeof(std::string);
  }
  bytes += static_cast<Bytes>(entry.histogram_obs.size()) *
           sizeof(obs::ScopedHistogramCapture::Observation);
  bytes += static_cast<Bytes>(entry.counter_deltas.size()) *
           sizeof(obs::ScopedCounterCapture::Delta);
  // Plan payload: the node tree is shared (refcounted) with the live
  // plan, so charge per-node bookkeeping rather than deep size.
  bytes += static_cast<Bytes>(entry.plan.executed.NumOperators()) * 64;
  bytes += static_cast<Bytes>(entry.plan.dw_side.size() +
                              entry.plan.cut_inputs.size()) *
           sizeof(void*);
  return bytes;
}

const PlanCache::Entry* PlanCache::Peek(const PlanCacheKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &it->second->entry;
}

const PlanCache::Entry* PlanCache::Lookup(const PlanCacheKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_ += 1;
    return nullptr;
  }
  hits_ += 1;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->entry;
}

int64_t PlanCache::Insert(const PlanCacheKey& key, Entry entry) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  Node node;
  node.key = key;
  node.bytes = EntryBytes(entry);
  node.entry = std::move(entry);
  bytes_ += node.bytes;
  lru_.push_front(std::move(node));
  index_[key] = lru_.begin();

  int64_t evicted = 0;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const Node& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_ += 1;
    evicted += 1;
  }
  return evicted;
}

void PlanCache::Invalidate() {
  invalidations_ += 1;
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.entries = static_cast<int64_t>(lru_.size());
  stats.bytes = bytes_;
  return stats;
}

}  // namespace miso::server
