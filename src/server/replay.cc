#include "server/replay.h"

#include <future>
#include <utility>

namespace miso::server {

Result<sim::RunReport> ReplayWorkload(
    const relation::Catalog* catalog, const ServerConfig& config,
    const std::vector<workload::WorkloadQuery>& queries) {
  ServerConfig server_config = config;
  if (server_config.expected_sessions == 0) {
    server_config.expected_sessions = static_cast<int>(queries.size());
  }
  MisoServer server(catalog, server_config);
  std::vector<std::future<SessionResult>> futures;
  futures.reserve(queries.size());
  for (const workload::WorkloadQuery& query : queries) {
    futures.push_back(server.Submit(query));
  }
  // Close + drain before *any* exit below: every admitted session's
  // future must resolve (a server fatal resolves them all with that
  // status) and Finish joins the scheduler, so no early return can leak
  // a blocked producer or an unresolved promise.
  server.Close();

  // Futures resolve in admission order, so the first error seen here is
  // the lowest-indexed failing session. With overload protection on,
  // shed and retry-exhausted sessions are *terminal per-session*
  // outcomes (DESIGN.md §16), not run-level errors — the run completes
  // and reports them in sessions_shed / sessions_failed.
  const bool overload = server_config.overload.Enabled();
  Status first_error;
  for (std::future<SessionResult>& future : futures) {
    SessionResult result = future.get();
    if (result.status.ok() || !first_error.ok()) continue;
    if (overload && (result.outcome == SessionOutcome::kShed ||
                     result.outcome == SessionOutcome::kFailed)) {
      continue;
    }
    first_error = result.status;
  }
  Result<sim::RunReport> finished = server.Finish();
  // A fatal Finish wins over a per-session error: by the time it fires,
  // the per-session statuses downstream of it carry the same fatal.
  if (!finished.ok()) return finished.status();
  if (!first_error.ok()) return first_error;
  return finished;
}

Result<sim::RunReport> ReplayPaperWorkload(const relation::Catalog* catalog,
                                           const ServerConfig& config,
                                           uint64_t workload_seed) {
  workload::WorkloadConfig wl;
  wl.seed = workload_seed;
  MISO_ASSIGN_OR_RETURN(workload::EvolutionaryWorkload workload,
                        workload::EvolutionaryWorkload::Generate(catalog, wl));
  return ReplayWorkload(catalog, config, workload.queries());
}

}  // namespace miso::server
