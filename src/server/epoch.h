#ifndef MISO_SERVER_EPOCH_H_
#define MISO_SERVER_EPOCH_H_

#include <vector>

#include "common/units.h"
#include "views/view.h"

namespace miso::server {

/// Post-publication state of one design epoch, handed to
/// `ServerConfig::epoch_observer` by the scheduler thread right after an
/// online reorganization publishes (or is rolled back / aborted). Tests
/// use it to assert the epoch discipline: at every observation point the
/// live design is journal-consistent, Vh ∩ Vd = ∅, and — except right
/// after a rollback, when HV legitimately carries over-budget
/// opportunistic views (§3.1) — within budgets.
struct EpochSnapshot {
  /// Epoch number now in effect (increments only on a successful publish).
  int epoch = 0;
  /// Index of the reorganization that produced this snapshot.
  int reorg_index = 0;
  /// Admission index of the boundary session that triggered it.
  int boundary_session = 0;
  /// True when the reorganization did not publish: its journal crashed
  /// and recovered by rollback, so the live design is unchanged.
  bool rolled_back = false;
  /// Journal steps applied online (including recovery steps).
  int steps_applied = 0;
  Bytes moved_to_dw = 0;
  Bytes moved_to_hv = 0;
  /// Live catalog state right after the flip (or non-flip).
  Bytes hv_used = 0;
  Bytes dw_used = 0;
  std::vector<views::ViewId> hv_ids;
  std::vector<views::ViewId> dw_ids;
  /// Simulated duration of the reorganization (tune compute + movement +
  /// crash backoff), i.e. the time a stop-the-world cadence would have
  /// charged in full.
  Seconds reorg_duration_s = 0;
};

}  // namespace miso::server

#endif  // MISO_SERVER_EPOCH_H_
