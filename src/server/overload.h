#ifndef MISO_SERVER_OVERLOAD_H_
#define MISO_SERVER_OVERLOAD_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "workload/evolutionary.h"

namespace miso::server {

/// Deterministic overload protection for the online server (DESIGN.md
/// §16): admission deadlines with priority-class load shedding, a
/// DW-health circuit breaker fed by the fault layer's retry outcomes,
/// and a stuck-wave watchdog. Everything here runs in *simulated* time
/// on the scheduler thread, so every decision is a pure function of the
/// admission order (plus `MISO_FAULT_SEED`) — never of wall clock,
/// thread count, or scheduling luck.

/// One admission priority class. A session whose simulated queue wait
/// exceeds its class deadline at reduce time is shed instead of
/// answered; `deadline_s <= 0` means the class is never shed (e.g. a
/// "gold" tier).
struct PriorityClass {
  std::string name;
  Seconds deadline_s = 0;
};

/// Overload-protection knobs, embedded in `ServerConfig`. All default
/// off: a config that never touches this struct serves byte-identically
/// to the pre-overload pipeline (pinned by tests, like the fault
/// layer's zero-cost contract).
struct OverloadConfig {
  /// Enables deadline-driven load shedding.
  bool admission_deadlines = false;

  /// Simulated inter-arrival gap: session i is deemed to arrive at
  /// `i * arrival_interval_s`. With 0, every session arrives at t=0 and
  /// queue wait equals the simulated completion clock itself.
  Seconds arrival_interval_s = 0;

  /// Priority classes indexed by `classifier`'s return value. Empty
  /// means one implicit class with no deadline (nothing is ever shed).
  std::vector<PriorityClass> classes;

  /// Maps a session to a class index (clamped into `classes`). Null
  /// means class 0. Determinism is the caller's contract, exactly like
  /// `ServerConfig::epoch_observer`: the classifier must depend only on
  /// its arguments.
  std::function<int(const workload::WorkloadQuery& query, int session_id)>
      classifier;

  /// Enables the DW-health circuit breaker.
  bool breaker = false;

  /// Consecutive DW-path-faulted sessions that trip closed -> open.
  int breaker_failure_threshold = 3;

  /// Simulated seconds an open breaker waits before probing (open ->
  /// half-open).
  Seconds breaker_cooldown_s = 600;

  /// Clean DW contacts required in half-open to close again.
  int breaker_half_open_successes = 2;

  /// Fail the run with V213 after this many consecutive waves reduce
  /// without one completed session (0 = watchdog off).
  int watchdog_stuck_waves = 0;

  bool Enabled() const {
    return admission_deadlines || breaker || watchdog_stuck_waves > 0;
  }
};

/// Circuit-breaker states. Numeric values are the wire/verify encoding
/// (`verify::VerifyBreakerTransition` takes them as ints).
enum class BreakerState {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

const char* BreakerStateName(BreakerState state);

/// DW-health circuit breaker: closed -> open after
/// `breaker_failure_threshold` consecutive sessions whose DW path
/// faulted; open -> half-open once `breaker_cooldown_s` simulated
/// seconds elapse; half-open -> closed after
/// `breaker_half_open_successes` clean DW contacts, or back -> open on
/// the first fault. While open the server plans sessions HV-only
/// (degraded), so the warehouse gets a true quiet period — the
/// generalization of the fault layer's hard outage windows to
/// observed-failure-driven degradation.
///
/// Driven exclusively from the scheduler thread at serial points
/// (`AdvanceTime` per wave, `RecordOutcome` per reduced session), with
/// `now` the server's simulated clock; no locking needed or present.
class DwCircuitBreaker {
 public:
  explicit DwCircuitBreaker(const OverloadConfig& config);

  /// One state-machine edge, reported back so the server can invalidate
  /// the plan cache and emit telemetry on every transition.
  struct Edge {
    BreakerState from = BreakerState::kClosed;
    BreakerState to = BreakerState::kClosed;
    int failures = 0;  // consecutive DW faults at the moment of the edge
    Seconds at = 0;    // simulated time of the edge
  };

  /// Advances the cooldown clock; returns the open -> half-open edge
  /// when the cooldown expires, nullopt otherwise.
  std::optional<Edge> AdvanceTime(Seconds now);

  /// Feeds one reduced session. `dw_contact` is whether its plan
  /// actually touched the warehouse (HV-only/degraded sessions are
  /// neutral); `faulted` is whether its DW path injected or exhausted
  /// faults. Returns the edge taken, if any.
  std::optional<Edge> RecordOutcome(bool dw_contact, bool faulted,
                                    Seconds now);

  BreakerState state() const { return state_; }

  /// Monotone counter bumped at every edge. Speculative waves record it
  /// at planning time and are replanned when it moved by the join —
  /// the breaker analogue of the catalog fingerprint check.
  uint64_t transition_epoch() const { return transition_epoch_; }

  /// Total edges taken (== transition_epoch, typed for reports).
  int transitions() const { return static_cast<int>(transition_epoch_); }

  /// Cumulative simulated seconds spent open, including the current
  /// open stretch up to `now`.
  Seconds OpenSeconds(Seconds now) const;

  /// Latched V211 if an illegal edge was ever attempted (a server bug,
  /// not an operator condition); OK otherwise.
  const Status& status() const { return status_; }

 private:
  std::optional<Edge> TransitionTo(BreakerState to, Seconds now);

  const int failure_threshold_;
  const Seconds cooldown_s_;
  const int half_open_successes_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_seen_ = 0;
  uint64_t transition_epoch_ = 0;
  Seconds opened_at_ = 0;
  Seconds open_total_s_ = 0;
  Status status_;
};

}  // namespace miso::server

#endif  // MISO_SERVER_OVERLOAD_H_
