#include "server/background_reorganizer.h"

#include <optional>
#include <utility>

#include "common/status.h"
#include "obs/trace.h"
#include "verify/verify_gate.h"
#include "views/view.h"

namespace miso::server {

namespace {

/// (id, signature) pairs in id order — the byte-exactness fingerprint of
/// a catalog for the rollback check below.
std::vector<std::pair<views::ViewId, uint64_t>> Fingerprint(
    const views::ViewCatalog& catalog) {
  std::vector<std::pair<views::ViewId, uint64_t>> fp;
  for (const views::View& v : catalog.AllViews()) {
    fp.emplace_back(v.id, v.signature);
  }
  return fp;
}

void Fold(const tuner::ReorgJournal::Outcome& step,
          tuner::ReorgJournal::Outcome* total) {
  total->steps += step.steps;
  total->bytes_to_dw += step.bytes_to_dw;
  total->bytes_to_hv += step.bytes_to_hv;
}

}  // namespace

BackgroundReorganizer::BackgroundReorganizer(const tuner::MisoTuner* tuner)
    : tuner_(tuner), requests_(/*capacity=*/1), thread_([this] { Loop(); }) {}

BackgroundReorganizer::~BackgroundReorganizer() {
  requests_.Close();
  thread_.join();
}

void BackgroundReorganizer::Enqueue(ReorgRequest request) {
  // The scheduler never enqueues more than one in-flight reorganization,
  // and the queue drains on Close, so this cannot drop work.
  requests_.Push(std::move(request));
}

void BackgroundReorganizer::Loop() {
  while (std::optional<ReorgRequest> request = requests_.Pop()) {
    RunOne(tuner_, &*request);
  }
}

void BackgroundReorganizer::RunOne(const tuner::MisoTuner* tuner,
                                   ReorgRequest* request) {
  // Everything the layers below emit on this thread is captured and
  // returned for serial replay: trace lines verbatim, floating-point
  // histogram observations deferred so their accumulation order is fixed
  // by the scheduler, never by thread timing.
  obs::ScopedTraceCapture trace_capture;
  obs::ScopedHistogramCapture histogram_capture;

  Result<tuner::ReorgPlan> plan =
      tuner->Tune(request->hv, request->dw, request->window);
  if (!plan.ok()) {
    request->flip.set_value(plan.status());
    request->done.set_value(plan.status());
    return;
  }
  Result<tuner::ReorgJournal> journal =
      tuner::ReorgJournal::Create(*plan, request->hv, request->dw);
  if (!journal.ok()) {
    request->flip.set_value(journal.status());
    request->done.set_value(journal.status());
    return;
  }

  const int crash_before =
      request->injector != nullptr
          ? request->injector->ReorgCrashPoint(
                static_cast<uint64_t>(request->reorg_index),
                journal->num_entries())
          : -1;
  const bool rolled_back =
      crash_before >= 0 && request->recovery == RecoveryPolicy::kRollback;

  ReorgFlip flip;
  flip.plan = std::move(*plan);
  flip.journal = *journal;  // pristine: no step has run yet
  flip.crash_before = crash_before;
  flip.rolled_back = rolled_back;
  request->flip.set_value(std::move(flip));

  // Baseline for the rollback byte-exactness guarantee.
  const Bytes hv_bytes_before = request->hv.used_bytes();
  const Bytes dw_bytes_before = request->dw.used_bytes();
  const auto hv_fp_before = Fingerprint(request->hv);
  const auto dw_fp_before = Fingerprint(request->dw);

  ReorgOutcome outcome;
  outcome.rolled_back = rolled_back;

  // Step-at-a-time walk: after every atomic step the private design is a
  // valid intermediate state of the journal — V209-checkable — which is
  // exactly the property the epoch discipline needs: any state this
  // thread could crash in is one `Recover` handles.
  const int stop =
      crash_before < 0 ? journal->num_entries() : crash_before;
  while (journal->next_unapplied() < stop) {
    Result<tuner::ReorgJournal::Outcome> step =
        journal->ApplyStep(&request->hv, &request->dw);
    if (!step.ok()) {
      request->done.set_value(step.status());
      return;
    }
    Fold(*step, &outcome.partial);
    if (verify::Enabled()) {
      const Status v209 = verify::VerifyJournalConsistency(
          *journal, request->hv, request->dw);
      if (!v209.ok()) {
        request->done.set_value(v209);
        return;
      }
    }
  }

  if (crash_before >= 0) {
    Result<tuner::ReorgJournal::Outcome> recovery =
        journal->Recover(request->recovery, &request->hv, &request->dw);
    if (!recovery.ok()) {
      request->done.set_value(recovery.status());
      return;
    }
    outcome.recovery = *recovery;
    // Post-recovery invariants: journal consistent with the catalogs and
    // in a terminal state (V209/V210).
    if (verify::Enabled()) {
      const Status v = verify::VerifyJournalConsistency(
          *journal, request->hv, request->dw);
      if (!v.ok()) {
        request->done.set_value(v);
        return;
      }
    }
    if (rolled_back &&
        (request->hv.used_bytes() != hv_bytes_before ||
         request->dw.used_bytes() != dw_bytes_before ||
         Fingerprint(request->hv) != hv_fp_before ||
         Fingerprint(request->dw) != dw_fp_before)) {
      request->done.set_value(Status::Internal(
          "reorg rollback did not restore the pre-reorg design byte-exactly"));
      return;
    }
  }

  // Budgets and Vh ∩ Vd = ∅ on the completed private design. Skipped
  // after a rollback: the design reverts to its pre-reorg state, where
  // HV may legitimately exceed Bh between reorganizations (§3.1).
  if (verify::Enabled() && !rolled_back) {
    const Status design =
        verify::VerifyDesign(request->hv, request->dw, request->budgets);
    if (!design.ok()) {
      request->done.set_value(design);
      return;
    }
  }

  outcome.trace_lines = trace_capture.TakeLines();
  outcome.histogram_obs = histogram_capture.TakeObservations();
  request->done.set_value(std::move(outcome));
}

}  // namespace miso::server
