#include "fault/fault.h"

#include <algorithm>
#include <string>

#include "common/env.h"

namespace miso::fault {

namespace {

/// SplitMix64 finalizer: avalanche-quality mixing so nearby entity ids
/// and attempt numbers decorrelate fully.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashKey(uint64_t seed, FaultSite site, uint64_t entity,
                 uint64_t attempt) {
  uint64_t h = Mix64(seed ^ 0x6d69736f5f666c74ULL);  // "miso_flt"
  h = Mix64(h ^ (static_cast<uint64_t>(site) + 1));
  h = Mix64(h ^ entity);
  h = Mix64(h ^ attempt);
  return h;
}

/// Maps a hash to a uniform double in [0, 1) using the top 53 bits.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultProfile ProfileFromEnv() {
  static const char* const kNames[] = {"off", "transient", "outage", "chaos"};
  const int idx = EnvChoice("MISO_FAULT_PROFILE", /*fallback_index=*/0,
                            kNames, 4);
  return static_cast<FaultProfile>(idx);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kHvJob:
      return "hv_job";
    case FaultSite::kTransfer:
      return "transfer";
    case FaultSite::kDwLoad:
      return "dw_load";
    case FaultSite::kReorg:
      return "reorg";
  }
  return "?";
}

bool IsDwPathSite(FaultSite site) {
  return site == FaultSite::kTransfer || site == FaultSite::kDwLoad;
}

FaultPlan FaultPlan::Resolve(const FaultSpec& spec, int num_queries) {
  FaultPlan plan;
  plan.profile = spec.profile == FaultProfile::kEnv ? ProfileFromEnv()
                                                    : spec.profile;
  plan.retry = spec.retry;
  plan.recovery = spec.recovery;
  const int64_t seed =
      spec.seed >= 0
          ? spec.seed
          : EnvInt("MISO_FAULT_SEED", /*fallback=*/1, /*min_value=*/0);
  plan.seed = static_cast<uint64_t>(seed);
  // The rate knob is read (and strictly validated) even when the profile
  // is off, so a malformed MISO_FAULT_RATE dies with exit 2 in every run
  // — same contract as MISO_THREADS and MISO_FAULT_SEED.
  const double rate =
      spec.rate >= 0 ? std::min(spec.rate, 1.0)
                     : EnvDouble("MISO_FAULT_RATE", /*fallback=*/0.08,
                                 /*min_value=*/0.0, /*max_value=*/1.0);
  if (plan.profile == FaultProfile::kOff) return plan;

  plan.hv_job_rate = rate;
  plan.transfer_rate = rate;
  plan.dw_load_rate = rate;
  if (plan.profile == FaultProfile::kChaos) {
    // Crashes must actually occur in short chaos runs; a reorg fires only
    // every few queries, so its crash rate is amplified over the base rate.
    plan.reorg_crash_rate = std::min(1.0, std::max(rate * 6.0, 0.5));
  }

  plan.dw_outages = spec.dw_outages;
  const bool wants_outage = plan.profile == FaultProfile::kOutage ||
                            plan.profile == FaultProfile::kChaos;
  if (wants_outage && plan.dw_outages.empty() && num_queries > 0) {
    // One window covering ~20% of the workload, its start drawn
    // deterministically from the fault seed in [n/4, n/2].
    const int length = std::max(2, num_queries / 5);
    const int lo = num_queries / 4;
    const int hi = std::max(lo + 1, num_queries / 2);
    const uint64_t h = Mix64(plan.seed ^ 0x6f757461676521ULL);  // "outage!"
    const int begin = lo + static_cast<int>(h % static_cast<uint64_t>(hi - lo));
    OutageWindow window;
    window.begin_query = begin;
    window.end_query = std::min(num_queries, begin + length);
    plan.dw_outages.push_back(window);
  }
  return plan;
}

bool FaultPlan::Enabled() const { return profile != FaultProfile::kOff; }

double FaultPlan::RateOf(FaultSite site) const {
  switch (site) {
    case FaultSite::kHvJob:
      return hv_job_rate;
    case FaultSite::kTransfer:
      return transfer_rate;
    case FaultSite::kDwLoad:
      return dw_load_rate;
    case FaultSite::kReorg:
      return reorg_crash_rate;
  }
  return 0;
}

FaultDecision FaultInjector::Decide(FaultSite site, uint64_t entity,
                                    int attempt) const {
  FaultDecision decision;
  const double rate = plan_.RateOf(site);
  if (rate <= 0) return decision;
  const uint64_t h =
      HashKey(plan_.seed, site, entity, static_cast<uint64_t>(attempt));
  if (rate < 1.0 && ToUnit(h) >= rate) return decision;
  decision.fail = true;
  // Independent hash for the interruption point so the failure decision
  // and the charged fraction are uncorrelated.
  decision.partial_fraction = 0.05 + 0.90 * ToUnit(Mix64(h ^ 0x70617274ULL));
  return decision;
}

bool FaultInjector::DwDownForQuery(int query_index) const {
  for (const OutageWindow& window : plan_.dw_outages) {
    if (window.Contains(query_index)) return true;
  }
  return false;
}

int FaultInjector::ReorgCrashPoint(uint64_t reorg_id, int num_entries) const {
  if (num_entries < 2 || plan_.reorg_crash_rate <= 0) return -1;
  const uint64_t h = HashKey(plan_.seed, FaultSite::kReorg, reorg_id, 0);
  if (plan_.reorg_crash_rate < 1.0 && ToUnit(h) >= plan_.reorg_crash_rate) {
    return -1;
  }
  // Crash between moves: after at least one, before the last.
  const uint64_t span = static_cast<uint64_t>(num_entries - 1);
  return 1 + static_cast<int>(Mix64(h ^ 0x6372617368ULL) % span);  // "crash"
}

Status ExhaustedError(FaultSite site, uint64_t entity, int attempts) {
  return Status::Internal("fault: " + std::string(FaultSiteName(site)) +
                          " entity " + std::to_string(entity) + " exhausted " +
                          std::to_string(attempts) + " attempts");
}

}  // namespace miso::fault
