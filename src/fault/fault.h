#ifndef MISO_FAULT_FAULT_H_
#define MISO_FAULT_FAULT_H_

#include <cstdint>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/units.h"

namespace miso::fault {

/// Where a fault can strike. Every site corresponds to one class of
/// simulated operation the multistore performs:
///
///  * kHvJob     — an HV MapReduce job dies mid-flight and is re-run;
///  * kTransfer  — an inter-store transfer (dump + network, or the
///                 DW-export / HDFS-write legs of a reorg move) is
///                 interrupted mid-stream; the partially-moved bytes are
///                 charged to simulated time even though the attempt
///                 failed;
///  * kDwLoad    — the DW bulk load of already-staged bytes fails; only
///                 the load is retried (the staged file survives);
///  * kReorg     — the tuner's reorganization crashes between two view
///                 moves, leaving a half-applied design for recovery.
enum class FaultSite {
  kHvJob = 0,
  kTransfer = 1,
  kDwLoad = 2,
  kReorg = 3,
};

const char* FaultSiteName(FaultSite site);

/// True for the sites on the HV->DW data path (kTransfer, kDwLoad) whose
/// failures indict the warehouse itself. HV job faults and reorg crashes
/// say nothing about DW health, so the server's DW circuit breaker
/// (DESIGN.md §16) must ignore them.
bool IsDwPathSite(FaultSite site);

/// Named fault mixes, selectable programmatically or via
/// `MISO_FAULT_PROFILE` (off | transient | outage | chaos).
enum class FaultProfile {
  /// Resolve from the environment (`MISO_FAULT_PROFILE`, default off).
  /// This is the default of `FaultSpec::profile`, so an untouched
  /// SimConfig stays fault-free unless the user opts in.
  kEnv = -1,
  kOff = 0,
  /// Retryable failures only: HV jobs, transfers, DW loads.
  kTransient = 1,
  /// Transient faults plus a DW outage window (queries re-planned HV-only).
  kOutage = 2,
  /// Everything: transient faults, DW outage, reorganization crashes.
  kChaos = 3,
};

/// A window of query indices [begin_query, end_query) during which the DW
/// is unavailable: affected queries are re-planned as HV-only splits and
/// reorganizations are deferred. Keyed by query index, not simulated
/// time, so a window is deterministic for any workload and thread count.
struct OutageWindow {
  int begin_query = 0;
  int end_query = 0;  // exclusive

  bool Contains(int query_index) const {
    return query_index >= begin_query && query_index < end_query;
  }
};

/// User-facing fault configuration (lives in `sim::SimConfig::fault`).
/// Unset fields resolve from the environment: `MISO_FAULT_PROFILE`
/// (off|transient|outage|chaos, default off), `MISO_FAULT_RATE` (a number
/// in [0, 1], default 0.08), `MISO_FAULT_SEED` (integer >= 0, default 1).
/// Parsing is strict — garbage terminates the process with exit code 2,
/// matching the MISO_THREADS / MISO_METRICS contract.
struct FaultSpec {
  FaultProfile profile = FaultProfile::kEnv;

  /// Base per-operation failure probability; < 0 resolves from
  /// `MISO_FAULT_RATE` (default 0.08).
  double rate = -1.0;

  /// Seed of the fault stream; < 0 resolves from `MISO_FAULT_SEED`
  /// (default 1). Independent of the workload seed: the same fault seed
  /// replays the same fault pattern over any workload.
  int64_t seed = -1;

  /// Explicit DW outage windows. Empty + an outage-bearing profile =
  /// one deterministic window derived from (seed, workload length).
  std::vector<OutageWindow> dw_outages;

  /// Retry/backoff applied to every retryable site.
  RetryPolicy retry;

  /// How a crashed reorganization recovers (resume completes the
  /// remaining moves from the journal; rollback undoes the applied ones).
  RecoveryPolicy recovery = RecoveryPolicy::kResume;
};

/// Fully-resolved fault model for one run: every env knob read, profile
/// expanded into per-site rates, outage windows derived. Resolution is
/// the only place the environment is consulted — everything downstream is
/// a pure function of this struct.
struct FaultPlan {
  FaultProfile profile = FaultProfile::kOff;
  uint64_t seed = 1;
  double hv_job_rate = 0;
  double transfer_rate = 0;
  double dw_load_rate = 0;
  /// Probability that one reorganization crashes between view moves.
  double reorg_crash_rate = 0;
  std::vector<OutageWindow> dw_outages;
  RetryPolicy retry;
  RecoveryPolicy recovery = RecoveryPolicy::kResume;

  /// Resolves `spec` against the environment and derives profile-default
  /// outage windows for a workload of `num_queries` queries.
  static FaultPlan Resolve(const FaultSpec& spec, int num_queries);

  bool Enabled() const;
  double RateOf(FaultSite site) const;
};

/// One injection decision.
struct FaultDecision {
  bool fail = false;
  /// For interrupted work (transfers, jobs): fraction of the attempt's
  /// cost charged before the failure, in [0.05, 0.95]. 0 when `!fail`.
  double partial_fraction = 0;
};

/// Per-operation fault bookkeeping, accumulated by the execution layers
/// and folded into query records / metrics by the simulator.
struct FaultAccounting {
  int injected = 0;
  int retries = 0;
  Seconds wasted_s = 0;
  Seconds backoff_s = 0;
  bool exhausted = false;

  void Merge(const RetryStats& stats) {
    if (stats.retries() > 0 || stats.exhausted) {
      injected += stats.retries() + (stats.exhausted ? 1 : 0);
    }
    retries += stats.retries();
    wasted_s += stats.wasted_s;
    backoff_s += stats.backoff_s;
    exhausted = exhausted || stats.exhausted;
  }
  void Merge(const FaultAccounting& other) {
    injected += other.injected;
    retries += other.retries;
    wasted_s += other.wasted_s;
    backoff_s += other.backoff_s;
    exhausted = exhausted || other.exhausted;
  }
  bool Any() const { return injected > 0; }
};

/// Deterministic, stateless fault oracle. Every decision is a pure hash
/// of (plan seed, site, entity id, attempt) — no shared RNG stream — so
/// decisions are byte-identical regardless of evaluation order, thread
/// count, or how many other sites were probed in between. Zero-cost
/// discipline: callers hold a `const FaultInjector*` that is null when
/// the plan is disabled, and every instrumented path branches on that
/// pointer before doing any fault work.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Does attempt `attempt` (1-based) of the operation identified by
  /// (site, entity) fail?
  FaultDecision Decide(FaultSite site, uint64_t entity, int attempt) const;

  /// Is the DW inside an outage window for query `query_index`?
  bool DwDownForQuery(int query_index) const;

  /// Journal index before which reorganization `reorg_id` crashes, in
  /// [1, num_entries); -1 when this reorg does not crash. A crash always
  /// lands *between* moves (at least one applied, at least one pending),
  /// so reorgs with fewer than two journal entries never crash.
  int ReorgCrashPoint(uint64_t reorg_id, int num_entries) const;

 private:
  FaultPlan plan_;
};

/// Canonical diagnostic for a retry budget that ran dry, e.g.
/// "fault: transfer entity 12 exhausted 3 attempts".
Status ExhaustedError(FaultSite site, uint64_t entity, int attempts);

}  // namespace miso::fault

#endif  // MISO_FAULT_FAULT_H_
