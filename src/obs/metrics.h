#ifndef MISO_OBS_METRICS_H_
#define MISO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace miso::obs {

/// Process-wide switch for metric collection. Default: OFF; the
/// `MISO_METRICS` environment variable (strictly "0"/"1") overrides the
/// default, and `SetMetricsEnabled` overrides both. Every instrumentation
/// site guards on `MetricsOn()` — one relaxed atomic load — so a disabled
/// registry costs nothing on the hot paths.
bool MetricsOn();
void SetMetricsEnabled(bool enabled);

/// RAII toggle for tests and `SimConfig::metrics`: forces metrics on (or
/// off) for a scope and restores the previous state on destruction.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(bool enabled);
  ~ScopedMetrics();

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool previous_;
};

/// Monotonically increasing integer metric. Increments are commutative,
/// so concurrent `Add`s from any number of threads produce the same total
/// as a serial run — counters are safe to touch from parallel sections.
class Counter {
 public:
  /// When a `ScopedCounterCapture` is active on the calling thread the
  /// delta is deferred into that capture instead of touching the counter
  /// — see the capture class for why.
  void Add(int64_t delta);
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// Last-written-value metric with a monotone `Max` flavour for high-water
/// marks. `Set` is only deterministic when called from serial code; `Max`
/// commutes and may be called from anywhere.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. The bucket bounds are supplied at registration
/// and never change (deterministic across runs and thread counts); bucket
/// `i` counts observations `v <= bounds[i]`, with one extra overflow
/// bucket for everything above the last bound. Bucket-count increments
/// commute; the running `sum` is a floating-point accumulation and is
/// only deterministic when observations arrive from serial code (every
/// emission site in the library observes serially).
class Histogram {
 public:
  /// When a `ScopedHistogramCapture` is active on the calling thread the
  /// observation is deferred into that capture instead of touching the
  /// histogram — see the capture class for why.
  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Defers this thread's histogram observations for the lifetime of the
/// object, the histogram twin of `ScopedTraceCapture`: a histogram's
/// running `sum` is a floating-point accumulation, deterministic only
/// when observations arrive in a fixed order, so parallel workers that
/// would observe model-class histograms (e.g. chosen-plan cost from
/// concurrent planning) open a capture and the driver `Replay`s the
/// deferred observations in deterministic (session/job) order. Captures
/// nest (innermost wins). Registered histograms are never destroyed, so
/// the deferred `Histogram*`s stay valid across the hand-off.
class ScopedHistogramCapture {
 public:
  /// One deferred `Histogram::Observe` call.
  struct Observation {
    Histogram* histogram = nullptr;
    double value = 0;
  };

  ScopedHistogramCapture();
  ~ScopedHistogramCapture();

  ScopedHistogramCapture(const ScopedHistogramCapture&) = delete;
  ScopedHistogramCapture& operator=(const ScopedHistogramCapture&) = delete;

  /// Moves the deferred observations out (capture continues, empty).
  std::vector<Observation> TakeObservations();

  /// Observes `observations` in order. Call from serial reduce code only —
  /// that serial ordering is the whole point of the capture.
  static void Replay(const std::vector<Observation>& observations);

 private:
  friend class Histogram;
  std::vector<Observation> observations_;
  ScopedHistogramCapture* parent_;
};

/// Defers this thread's counter increments, the counter twin of
/// `ScopedHistogramCapture`. Counter totals commute, so parallelism alone
/// never needs this — the capture exists for *revocable* work: a server
/// planning a session speculatively (or filling a plan cache) captures
/// the optimizer's counter deltas alongside its trace lines, replays them
/// at the session's serial reduce point if the work is accepted, and
/// simply drops them if it is thrown away. That keeps model-class
/// counters (e.g. `miso.optimizer.*`) a pure function of the admission
/// order — identical with caching or speculation on or off — instead of
/// counting discarded attempts. Captures nest (innermost wins).
/// Registered counters are never destroyed, so the deferred `Counter*`s
/// stay valid across the hand-off.
class ScopedCounterCapture {
 public:
  /// One deferred `Counter::Add` call.
  struct Delta {
    Counter* counter = nullptr;
    int64_t delta = 0;
  };

  ScopedCounterCapture();
  ~ScopedCounterCapture();

  ScopedCounterCapture(const ScopedCounterCapture&) = delete;
  ScopedCounterCapture& operator=(const ScopedCounterCapture&) = delete;

  /// Moves the deferred deltas out (capture continues, empty).
  std::vector<Delta> TakeDeltas();

  /// Applies `deltas` in order. Call from serial reduce code only.
  static void Replay(const std::vector<Delta>& deltas);

 private:
  friend class Counter;
  std::vector<Delta> deltas_;
  ScopedCounterCapture* parent_;
};

/// One row of a registry snapshot.
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  int64_t counter_value = 0;
  double gauge_value = 0;
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  double sum = 0;
};

/// Point-in-time view of every registered metric, rows sorted by name
/// (deterministic ordering regardless of registration order).
struct MetricsSnapshot {
  std::vector<MetricRow> rows;

  /// One line per metric: "counter <name> = <v>", "gauge <name> = <v>",
  /// "histogram <name> count=<n> sum=<s> buckets=<c0|c1|...>".
  std::string ToString() const;
};

/// Zero-dependency registry of named metrics. Registration is
/// first-use-wins: `GetCounter("x")` always returns the same object, so
/// call sites may cache the pointer in a function-local static. Metric
/// objects live for the life of the process (`Reset` zeroes values but
/// never invalidates pointers).
///
/// Label convention: a label is encoded into the name as
/// `name{key="value"}` (see `WithLabel`); the registry treats the result
/// as an ordinary name, which keeps lookups allocation-free on the caller
/// side and the snapshot ordering trivially deterministic.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Registers (or returns) a histogram. `bounds` must be ascending; on a
  /// repeat lookup the original bounds win and `bounds` is ignored.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value, keeping all registrations (cached pointers stay
  /// valid). Test isolation only.
  void Reset();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MISO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MISO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MISO_GUARDED_BY(mutex_);
};

/// The process-wide registry.
MetricsRegistry& Metrics();

/// `name{key="value"}` — the canonical single-label spelling.
std::string WithLabel(const std::string& name, const std::string& key,
                      const std::string& value);

}  // namespace miso::obs

#endif  // MISO_OBS_METRICS_H_
