#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/env.h"

namespace miso::obs {

namespace {

bool DefaultMetricsEnabled() { return EnvFlag("MISO_METRICS", false); }

std::atomic<bool>& MetricsFlag() {
  static std::atomic<bool> flag{DefaultMetricsEnabled()};
  return flag;
}

// Innermost active capture on this thread, nullptr when none.
thread_local ScopedHistogramCapture* t_histogram_capture = nullptr;
thread_local ScopedCounterCapture* t_counter_capture = nullptr;

}  // namespace

bool MetricsOn() { return MetricsFlag().load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  MetricsFlag().store(enabled, std::memory_order_relaxed);
}

ScopedMetrics::ScopedMetrics(bool enabled) : previous_(MetricsOn()) {
  SetMetricsEnabled(enabled);
}

ScopedMetrics::~ScopedMetrics() { SetMetricsEnabled(previous_); }

void Counter::Add(int64_t delta) {
  if (t_counter_capture != nullptr) {
    t_counter_capture->deltas_.push_back({this, delta});
    return;
  }
  value_.fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Max(double v) {
  double current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  if (t_histogram_capture != nullptr) {
    t_histogram_capture->observations_.push_back({this, v});
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

ScopedHistogramCapture::ScopedHistogramCapture()
    : parent_(t_histogram_capture) {
  t_histogram_capture = this;
}

ScopedHistogramCapture::~ScopedHistogramCapture() {
  t_histogram_capture = parent_;
}

std::vector<ScopedHistogramCapture::Observation>
ScopedHistogramCapture::TakeObservations() {
  std::vector<Observation> out;
  out.swap(observations_);
  return out;
}

void ScopedHistogramCapture::Replay(
    const std::vector<Observation>& observations) {
  for (const Observation& obs : observations) {
    obs.histogram->Observe(obs.value);
  }
}

ScopedCounterCapture::ScopedCounterCapture() : parent_(t_counter_capture) {
  t_counter_capture = this;
}

ScopedCounterCapture::~ScopedCounterCapture() { t_counter_capture = parent_; }

std::vector<ScopedCounterCapture::Delta> ScopedCounterCapture::TakeDeltas() {
  std::vector<Delta> out;
  out.swap(deltas_);
  return out;
}

void ScopedCounterCapture::Replay(const std::vector<Delta>& deltas) {
  for (const Delta& d : deltas) {
    d.counter->Add(d.delta);
  }
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  char buf[256];
  for (const MetricRow& row : rows) {
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "counter %s = %lld\n", row.name.c_str(),
                      static_cast<long long>(row.counter_value));
        out += buf;
        break;
      case MetricRow::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "gauge %s = %.17g\n", row.name.c_str(),
                      row.gauge_value);
        out += buf;
        break;
      case MetricRow::Kind::kHistogram: {
        std::snprintf(buf, sizeof(buf), "histogram %s count=%lld sum=%.17g buckets=",
                      row.name.c_str(), static_cast<long long>(row.count),
                      row.sum);
        out += buf;
        for (size_t i = 0; i < row.bucket_counts.size(); ++i) {
          std::snprintf(buf, sizeof(buf), "%s%lld", i == 0 ? "" : "|",
                        static_cast<long long>(row.bucket_counts[i]));
          out += buf;
        }
        out += '\n';
        break;
      }
    }
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  // std::map iteration is already name-sorted per kind; merge the three
  // kinds into one globally name-sorted row list.
  for (const auto& [name, counter] : counters_) {
    MetricRow row;
    row.kind = MetricRow::Kind::kCounter;
    row.name = name;
    row.counter_value = counter->value();
    snapshot.rows.push_back(std::move(row));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricRow row;
    row.kind = MetricRow::Kind::kGauge;
    row.name = name;
    row.gauge_value = gauge->value();
    snapshot.rows.push_back(std::move(row));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricRow row;
    row.kind = MetricRow::Kind::kHistogram;
    row.name = name;
    row.bounds = histogram->bounds();
    row.bucket_counts = histogram->BucketCounts();
    row.count = histogram->count();
    row.sum = histogram->sum();
    snapshot.rows.push_back(std::move(row));
  }
  std::sort(snapshot.rows.begin(), snapshot.rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string WithLabel(const std::string& name, const std::string& key,
                      const std::string& value) {
  return name + "{" + key + "=\"" + value + "\"}";
}

}  // namespace miso::obs
