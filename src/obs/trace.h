#ifndef MISO_OBS_TRACE_H_
#define MISO_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace miso::obs {

/// Process-wide switch for decision tracing. Default: OFF; the
/// `MISO_TRACE` environment variable (strictly "0"/"1") overrides the
/// default, and `SetTraceEnabled` overrides both. Emission sites guard on
/// `TraceOn()` so a disabled trace costs one relaxed atomic load.
bool TraceOn();
void SetTraceEnabled(bool enabled);

/// RAII toggle for tests and `SimConfig::trace`.
class ScopedTrace {
 public:
  explicit ScopedTrace(bool enabled);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool previous_;
};

/// One structured trace record, serialized as a single JSONL line:
/// `{"event":"<kind>","k1":v1,...}`. Fields keep insertion order; doubles
/// are printed with "%.17g" so the byte stream round-trips exactly and is
/// stable across runs. No timestamps and no thread ids by design — the
/// trace describes the *model*, which is deterministic, not the wall
/// clock, which is not (see docs/TELEMETRY.md).
class TraceEvent {
 public:
  explicit TraceEvent(const char* kind);

  TraceEvent& Str(const char* key, const std::string& value);
  TraceEvent& Int(const char* key, int64_t value);
  TraceEvent& Double(const char* key, double value);
  TraceEvent& Bool(const char* key, bool value);

  std::string ToJsonl() const;

 private:
  std::string kind_;
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> raw JSON
};

/// Appends `event` to the active sink when tracing is on; no-op (and
/// allocation-free at the call site when the builder is guarded) when off.
/// If a `ScopedTraceCapture` is active on the calling thread the line goes
/// to that capture buffer instead of the global sink — this is how
/// parallel seed sweeps keep the global trace deterministic: each worker
/// captures locally and the driver appends the buffers in seed order.
void Emit(const TraceEvent& event);

/// Global, mutex-protected JSONL buffer.
class TraceSink {
 public:
  void Append(std::string line);
  /// Returns all buffered lines and clears the buffer.
  std::vector<std::string> Drain();
  size_t size() const;
  /// Drains the buffer into `path` (newline-terminated lines, overwrite).
  /// Returns false on I/O failure.
  bool DrainToFile(const std::string& path);
};

TraceSink& Trace();

/// Redirects this thread's `Emit` calls into a local buffer for the
/// lifetime of the object. Captures nest (innermost wins). Used by
/// `RunSeedSweep`: each parallel seed body opens a capture, and after the
/// deterministic serial merge the per-seed lines are appended to the
/// global sink in seed order, making the trace byte-identical for any
/// `MISO_THREADS`.
class ScopedTraceCapture {
 public:
  ScopedTraceCapture();
  ~ScopedTraceCapture();

  ScopedTraceCapture(const ScopedTraceCapture&) = delete;
  ScopedTraceCapture& operator=(const ScopedTraceCapture&) = delete;

  /// Moves the captured lines out (capture continues, empty).
  std::vector<std::string> TakeLines();

 private:
  friend void Emit(const TraceEvent& event);
  std::vector<std::string> lines_;
  ScopedTraceCapture* parent_;
};

}  // namespace miso::obs

#endif  // MISO_OBS_TRACE_H_
