#include "obs/names.h"

#include <algorithm>
#include <string_view>

namespace miso::obs {

namespace {

// The labeled spellings actually registered at runtime for
// `miso.sim.moved_bytes_total` (the only labeled metric so far).
constexpr char kSimMovedBytesToDw[] =
    "miso.sim.moved_bytes_total{dir=\"to_dw\"}";
constexpr char kSimMovedBytesToHv[] =
    "miso.sim.moved_bytes_total{dir=\"to_hv\"}";

// Labeled spellings of the fault counters: one per injection site for
// `miso.fault.injected_total`, one per recovery policy for
// `miso.fault.reorg_recoveries_total`.
constexpr char kFaultInjectedHvJob[] =
    "miso.fault.injected_total{site=\"hv_job\"}";
constexpr char kFaultInjectedTransfer[] =
    "miso.fault.injected_total{site=\"transfer\"}";
constexpr char kFaultInjectedDwLoad[] =
    "miso.fault.injected_total{site=\"dw_load\"}";
constexpr char kFaultInjectedReorg[] =
    "miso.fault.injected_total{site=\"reorg\"}";
constexpr char kFaultRecoveriesResume[] =
    "miso.fault.reorg_recoveries_total{policy=\"resume\"}";
constexpr char kFaultRecoveriesRollback[] =
    "miso.fault.reorg_recoveries_total{policy=\"rollback\"}";

}  // namespace

std::vector<double> SecondsBuckets() {
  return {0.1, 1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600};
}

std::vector<double> CountBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

std::vector<double> MillisBuckets() {
  return {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000};
}

bool IsRuntimeClassMetric(std::string_view name) {
  if (name.rfind("miso.pool.", 0) == 0) return true;
  return name == names::kTunerTuneMs ||
         name == names::kServerSessionLatencyMs ||
         name == names::kServerAdmissionQueueHighWater ||
         name == names::kServerWavePipelineOverlapMs;
}

std::vector<const char*> AllMetricNames() {
  std::vector<const char*> all = {
      names::kOptimizeCalls,
      names::kSplitEnumerations,
      names::kSplitsEnumerated,
      names::kSplitsInfeasible,
      names::kCandidatesCosted,
      names::kWhatIfProbes,
      names::kChosenPlanSeconds,
      names::kSplitCandidates,
      names::kTunerReorgs,
      names::kTunerCandidates,
      names::kKnapsackItems,
      names::kInteractionsSignificant,
      names::kViewsMovedToDw,
      names::kViewsMovedToHv,
      names::kViewsDropped,
      names::kViewsRetained,
      names::kLastPredictedBenefit,
      names::kWhatIfCacheHits,
      names::kWhatIfCacheMisses,
      names::kWhatIfCacheEvictions,
      names::kTunerTuneMs,
      names::kSimQueries,
      names::kSimReorgs,
      names::kSimTransferredBytes,
      kSimMovedBytesToDw,
      kSimMovedBytesToHv,
      names::kSimQueryExecSeconds,
      kFaultInjectedHvJob,
      kFaultInjectedTransfer,
      kFaultInjectedDwLoad,
      kFaultInjectedReorg,
      names::kFaultRetries,
      names::kFaultExhausted,
      names::kFaultRetryBackoffSeconds,
      names::kFaultRetryAttempts,
      names::kFaultDwOutageQueries,
      names::kFaultReorgsSkipped,
      names::kFaultReorgCrashes,
      kFaultRecoveriesResume,
      kFaultRecoveriesRollback,
      names::kPoolTasksRun,
      names::kPoolSubmits,
      names::kPoolQueueHighWater,
      names::kServerSessions,
      names::kServerSessionsDegraded,
      names::kServerWaves,
      names::kServerEpochsPublished,
      names::kServerReorgSteps,
      names::kServerReorgsRolledBack,
      names::kServerOverlapSavedSeconds,
      names::kServerPlanCacheHits,
      names::kServerPlanCacheMisses,
      names::kServerPlanCacheEvictions,
      names::kServerSessionsShed,
      names::kServerSessionsFailed,
      names::kServerBreakerTransitions,
      names::kServerBreakerOpenMs,
      names::kServerSessionLatencyMs,
      names::kServerAdmissionQueueHighWater,
      names::kServerWavePipelineOverlapMs,
  };
  std::sort(all.begin(), all.end(),
            [](const char* a, const char* b) { return std::string_view(a) < b; });
  return all;
}

std::vector<const char*> AllTraceEventKinds() {
  std::vector<const char*> all = {
      names::kEvPlanChoice,  names::kEvPlanCosted,   names::kEvTunerReorg,
      names::kEvViewDecision, names::kEvSimQuery,    names::kEvSimReorg,
      names::kEvExplainVerify, names::kEvFaultQuery,
      names::kEvFaultReorgRecovery, names::kEvServerSession,
      names::kEvServerEpoch, names::kEvServerBreaker,
  };
  std::sort(all.begin(), all.end(),
            [](const char* a, const char* b) { return std::string_view(a) < b; });
  return all;
}

}  // namespace miso::obs
