#ifndef MISO_OBS_NAMES_H_
#define MISO_OBS_NAMES_H_

#include <string_view>
#include <vector>

namespace miso::obs {

/// Every metric name and trace-event kind the library emits, declared in
/// one place so the telemetry contract is enforceable: docs/TELEMETRY.md
/// must document each name (checked by `telemetry_doc_test`), and any
/// live registry snapshot must only contain names listed here.
///
/// Naming scheme: `miso.<layer>.<what>[_total]` — `_total` marks
/// counters; histograms and gauges carry a unit suffix (`_seconds`,
/// `_bytes`) where applicable. A single label is spelled into the name as
/// `name{key="value"}` (see `WithLabel`).
namespace names {

// --- optimizer ---------------------------------------------------------
inline constexpr char kOptimizeCalls[] = "miso.optimizer.optimize_calls_total";
inline constexpr char kSplitEnumerations[] =
    "miso.optimizer.split_enumerations_total";
inline constexpr char kSplitsEnumerated[] =
    "miso.optimizer.splits_enumerated_total";
inline constexpr char kSplitsInfeasible[] =
    "miso.optimizer.splits_infeasible_total";
inline constexpr char kCandidatesCosted[] =
    "miso.optimizer.candidates_costed_total";
inline constexpr char kWhatIfProbes[] = "miso.optimizer.whatif_probes_total";
inline constexpr char kChosenPlanSeconds[] =
    "miso.optimizer.chosen_plan_seconds";
inline constexpr char kSplitCandidates[] = "miso.optimizer.split_candidates";

// --- tuner -------------------------------------------------------------
inline constexpr char kTunerReorgs[] = "miso.tuner.reorgs_total";
inline constexpr char kTunerCandidates[] = "miso.tuner.candidates_total";
inline constexpr char kKnapsackItems[] = "miso.tuner.knapsack_items_total";
inline constexpr char kInteractionsSignificant[] =
    "miso.tuner.interactions_significant_total";
inline constexpr char kViewsMovedToDw[] = "miso.tuner.views_moved_to_dw_total";
inline constexpr char kViewsMovedToHv[] = "miso.tuner.views_moved_to_hv_total";
inline constexpr char kViewsDropped[] = "miso.tuner.views_dropped_total";
inline constexpr char kViewsRetained[] = "miso.tuner.views_retained_total";
inline constexpr char kLastPredictedBenefit[] =
    "miso.tuner.last_predicted_benefit_s";
inline constexpr char kWhatIfCacheHits[] =
    "miso.tuner.whatif_cache_hits_total";
inline constexpr char kWhatIfCacheMisses[] =
    "miso.tuner.whatif_cache_misses_total";
inline constexpr char kWhatIfCacheEvictions[] =
    "miso.tuner.whatif_cache_evictions_total";
// Runtime class — see docs/TELEMETRY.md and IsRuntimeClassMetric().
inline constexpr char kTunerTuneMs[] = "miso.tuner.tune_ms";

// --- simulator ---------------------------------------------------------
inline constexpr char kSimQueries[] = "miso.sim.queries_total";
inline constexpr char kSimReorgs[] = "miso.sim.reorgs_total";
inline constexpr char kSimTransferredBytes[] =
    "miso.sim.transferred_bytes_total";
inline constexpr char kSimMovedBytes[] = "miso.sim.moved_bytes_total";  // +dir label
inline constexpr char kSimQueryExecSeconds[] = "miso.sim.query_exec_seconds";

// --- fault injection (all model class: the fault stream is a pure
// --- function of the fault seed, so counts replay exactly) -------------
inline constexpr char kFaultInjected[] =
    "miso.fault.injected_total";  // +site label
inline constexpr char kFaultRetries[] = "miso.fault.retries_total";
inline constexpr char kFaultExhausted[] = "miso.fault.exhausted_total";
inline constexpr char kFaultRetryBackoffSeconds[] =
    "miso.fault.retry_backoff_seconds";
inline constexpr char kFaultRetryAttempts[] = "miso.fault.retry_attempts";
inline constexpr char kFaultDwOutageQueries[] =
    "miso.fault.dw_outage_queries_total";
inline constexpr char kFaultReorgsSkipped[] =
    "miso.fault.reorgs_skipped_total";
inline constexpr char kFaultReorgCrashes[] =
    "miso.fault.reorg_crashes_total";
inline constexpr char kFaultReorgRecoveries[] =
    "miso.fault.reorg_recoveries_total";  // +policy label

// --- thread pool (runtime class — see docs/TELEMETRY.md) ---------------
inline constexpr char kPoolTasksRun[] = "miso.pool.tasks_run_total";
inline constexpr char kPoolSubmits[] = "miso.pool.submits_total";
inline constexpr char kPoolQueueHighWater[] = "miso.pool.queue_high_water";

// --- online server (model class unless noted: session outcomes are a
// --- pure function of the admission order, which the server fixes) -----
inline constexpr char kServerSessions[] = "miso.server.sessions_total";
inline constexpr char kServerSessionsDegraded[] =
    "miso.server.sessions_degraded_total";
inline constexpr char kServerWaves[] = "miso.server.waves_total";
inline constexpr char kServerEpochsPublished[] =
    "miso.server.epochs_published_total";
inline constexpr char kServerReorgSteps[] = "miso.server.reorg_steps_total";
inline constexpr char kServerReorgsRolledBack[] =
    "miso.server.reorgs_rolled_back_total";
inline constexpr char kServerOverlapSavedSeconds[] =
    "miso.server.reorg_overlap_saved_s";
// Serving-path plan cache: every count is decided serially on the
// scheduler thread in admission order, so these stay model class even
// though the cache exists purely for throughput.
inline constexpr char kServerPlanCacheHits[] =
    "miso.server.plan_cache_hits_total";
inline constexpr char kServerPlanCacheMisses[] =
    "miso.server.plan_cache_misses_total";
inline constexpr char kServerPlanCacheEvictions[] =
    "miso.server.plan_cache_evictions_total";
// Overload protection (DESIGN.md §16): shed/failed/breaker decisions are
// made serially against the simulated clock, so all four stay model
// class — breaker_open_ms is cumulative *simulated* milliseconds open.
inline constexpr char kServerSessionsShed[] =
    "miso.server.sessions_shed_total";
inline constexpr char kServerSessionsFailed[] =
    "miso.server.sessions_failed_total";
inline constexpr char kServerBreakerTransitions[] =
    "miso.server.breaker_transitions_total";
inline constexpr char kServerBreakerOpenMs[] = "miso.server.breaker_open_ms";
// Runtime class — wall-clock admission/queue behaviour, varies with
// MISO_THREADS and machine load (see docs/TELEMETRY.md).
inline constexpr char kServerSessionLatencyMs[] =
    "miso.server.session_latency_ms";
inline constexpr char kServerAdmissionQueueHighWater[] =
    "miso.server.admission_queue_high_water";
inline constexpr char kServerWavePipelineOverlapMs[] =
    "miso.server.wave_pipeline_overlap_ms";

// --- trace event kinds -------------------------------------------------
inline constexpr char kEvPlanChoice[] = "optimizer.plan_choice";
inline constexpr char kEvPlanCosted[] = "optimizer.plan_costed";
inline constexpr char kEvTunerReorg[] = "tuner.reorg";
inline constexpr char kEvViewDecision[] = "tuner.view_decision";
inline constexpr char kEvSimQuery[] = "sim.query";
inline constexpr char kEvSimReorg[] = "sim.reorg";
inline constexpr char kEvExplainVerify[] = "core.explain_verify";
inline constexpr char kEvFaultQuery[] = "fault.query";
inline constexpr char kEvFaultReorgRecovery[] = "fault.reorg_recovery";
inline constexpr char kEvServerSession[] = "server.session";
inline constexpr char kEvServerEpoch[] = "server.epoch";
inline constexpr char kEvServerBreaker[] = "server.breaker";

// --- label values for kSimMovedBytes ----------------------------------
inline constexpr char kDirToDw[] = "to_dw";
inline constexpr char kDirToHv[] = "to_hv";

}  // namespace names

/// Fixed histogram bounds, shared by every histogram of the same unit so
/// the telemetry contract stays small and deterministic.
/// Seconds: 0.1 1 5 10 30 60 120 300 600 1800 3600 (+overflow).
std::vector<double> SecondsBuckets();
/// Counts: 1 2 4 8 16 32 64 128 256 512 1024 (+overflow).
std::vector<double> CountBuckets();
/// Milliseconds (wall-clock latencies): 1 5 10 50 100 500 1000 5000 10000
/// 60000 (+overflow).
std::vector<double> MillisBuckets();

/// True for metrics of the *runtime* determinism class (docs/TELEMETRY.md):
/// values that describe the execution machinery — wall-clock latencies and
/// `miso.pool.*` — and therefore legitimately vary with thread count and
/// machine load. Everything else is model-class: byte-identical across
/// `MISO_THREADS` for a fixed workload (enforced by
/// `trace_determinism_test`, which uses this predicate as its exclusion
/// list).
bool IsRuntimeClassMetric(std::string_view name);

/// All declared metric names, including the labeled spellings of
/// `miso.sim.moved_bytes_total`. Sorted lexicographically.
std::vector<const char*> AllMetricNames();

/// All declared trace-event kinds, sorted lexicographically.
std::vector<const char*> AllTraceEventKinds();

}  // namespace miso::obs

#endif  // MISO_OBS_NAMES_H_
