#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "common/annotations.h"
#include "common/env.h"

namespace miso::obs {

namespace {

bool DefaultTraceEnabled() { return EnvFlag("MISO_TRACE", false); }

std::atomic<bool>& TraceFlag() {
  static std::atomic<bool> flag{DefaultTraceEnabled()};
  return flag;
}

/// The process-wide sink: one mutex guarding the accumulated JSONL lines
/// (leaked intentionally so late-exit emitters never race destruction).
struct SinkState {
  Mutex mutex;
  std::vector<std::string> lines MISO_GUARDED_BY(mutex);
};

SinkState& Sink() {
  static SinkState* state = new SinkState();
  return *state;
}

thread_local ScopedTraceCapture* g_active_capture = nullptr;

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool TraceOn() { return TraceFlag().load(std::memory_order_relaxed); }

void SetTraceEnabled(bool enabled) {
  TraceFlag().store(enabled, std::memory_order_relaxed);
}

ScopedTrace::ScopedTrace(bool enabled) : previous_(TraceOn()) {
  SetTraceEnabled(enabled);
}

ScopedTrace::~ScopedTrace() { SetTraceEnabled(previous_); }

TraceEvent::TraceEvent(const char* kind) : kind_(kind) {}

TraceEvent& TraceEvent::Str(const char* key, const std::string& value) {
  std::string raw;
  AppendJsonString(raw, value);
  fields_.emplace_back(key, std::move(raw));
  return *this;
}

TraceEvent& TraceEvent::Int(const char* key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  fields_.emplace_back(key, buf);
  return *this;
}

TraceEvent& TraceEvent::Double(const char* key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

TraceEvent& TraceEvent::Bool(const char* key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string TraceEvent::ToJsonl() const {
  std::string out = "{\"event\":";
  AppendJsonString(out, kind_);
  for (const auto& [key, raw] : fields_) {
    out += ',';
    AppendJsonString(out, key);
    out += ':';
    out += raw;
  }
  out += '}';
  return out;
}

void Emit(const TraceEvent& event) {
  if (!TraceOn()) return;
  std::string line = event.ToJsonl();
  if (g_active_capture != nullptr) {
    g_active_capture->lines_.push_back(std::move(line));
    return;
  }
  SinkState& sink = Sink();
  MutexLock lock(sink.mutex);
  sink.lines.push_back(std::move(line));
}

void TraceSink::Append(std::string line) {
  SinkState& sink = Sink();
  MutexLock lock(sink.mutex);
  sink.lines.push_back(std::move(line));
}

std::vector<std::string> TraceSink::Drain() {
  SinkState& sink = Sink();
  MutexLock lock(sink.mutex);
  std::vector<std::string> lines;
  lines.swap(sink.lines);
  return lines;
}

size_t TraceSink::size() const {
  SinkState& sink = Sink();
  MutexLock lock(sink.mutex);
  return sink.lines.size();
}

bool TraceSink::DrainToFile(const std::string& path) {
  const std::vector<std::string> lines = Drain();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = true;
  for (const std::string& line : lines) {
    if (std::fputs(line.c_str(), file) == EOF || std::fputc('\n', file) == EOF) {
      ok = false;
      break;
    }
  }
  if (std::fclose(file) != 0) ok = false;
  return ok;
}

TraceSink& Trace() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

ScopedTraceCapture::ScopedTraceCapture() : parent_(g_active_capture) {
  g_active_capture = this;
}

ScopedTraceCapture::~ScopedTraceCapture() { g_active_capture = parent_; }

std::vector<std::string> ScopedTraceCapture::TakeLines() {
  std::vector<std::string> lines;
  lines.swap(lines_);
  return lines;
}

}  // namespace miso::obs
