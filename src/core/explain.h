#ifndef MISO_CORE_EXPLAIN_H_
#define MISO_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "optimizer/multistore_plan.h"
#include "plan/plan.h"
#include "relation/catalog.h"
#include "sim/simulator.h"
#include "views/view_catalog.h"

namespace miso::core {

/// The five-part cost anatomy of a multistore plan (paper Fig. 3): time
/// in the HV prefix, dumping the working set out of HDFS, moving it over
/// the interconnect, loading it into DW temp space, and the DW suffix.
/// `CostBreakdown` folds network+load into one figure; this struct is the
/// fully unfolded view, recomputed from the transfer model.
struct CostAnatomy {
  Seconds hv_exec_s = 0;
  Seconds dump_s = 0;
  Seconds transfer_s = 0;
  Seconds load_s = 0;
  Seconds dw_exec_s = 0;

  Seconds Total() const {
    return hv_exec_s + dump_s + transfer_s + load_s + dw_exec_s;
  }
};

/// Outcome of one verifier pass over the explained plan. `code` is the
/// stable "[Vnnn]" token (see verify/error_codes.h), "V000" when the pass
/// is clean; `message` carries the full diagnostic on failure.
struct VerifierVerdict {
  std::string check;
  std::string code;
  bool ok = false;
  std::string message;
};

/// One structured record answering "what would the system do with this
/// query, and why should I believe it": the chosen split plan, its
/// five-part cost anatomy, and (for `ExplainVerify`) the verdict of every
/// verifier pass — run unconditionally, not only under the debug gate.
struct ExplainReport {
  optimizer::MultistorePlan plan;
  CostAnatomy anatomy;

  /// True when the verifier battery ran (ExplainVerify vs plain Explain).
  bool verify_ran = false;
  std::vector<VerifierVerdict> verdicts;

  bool AllVerified() const;

  /// Human-readable rendering: the annotated operator tree (optimizer
  /// EXPLAIN), the anatomy line, and one verdict line per pass.
  std::string ToString() const;

  /// The whole record as one JSON object (stable field order, %.17g
  /// doubles — the same conventions as the JSONL trace).
  std::string ToJson() const;
};

/// Optimizes `query` under (`dw_views`, `hv_views`) using the cost models
/// `config` describes, and assembles the report. `run_verifiers` selects
/// the EXPLAIN VERIFY battery: query-graph checks, split-shape checks,
/// and full multistore-plan checks (catalog-resolving ViewScans), each
/// recorded as a verdict instead of failing the call — only optimizer
/// errors surface as a non-OK Result.
Result<ExplainReport> ExplainQuery(const relation::Catalog& catalog,
                                   const sim::SimConfig& config,
                                   const plan::Plan& query,
                                   const views::ViewCatalog& dw_views,
                                   const views::ViewCatalog& hv_views,
                                   bool run_verifiers);

}  // namespace miso::core

#endif  // MISO_CORE_EXPLAIN_H_
