#ifndef MISO_CORE_MISO_H_
#define MISO_CORE_MISO_H_

/// Umbrella header for the MISO multistore tuning library — a from-scratch
/// reproduction of "MISO: Souping Up Big Data Query Processing with a
/// Multistore System" (LeFevre et al., SIGMOD 2014).
///
/// Layers (bottom-up):
///  * common/    — Status/Result, units, RNG, hashing, logging, threads
///  * obs/       — metrics registry + JSONL decision trace (off by default)
///  * relation/  — schemas and the statistical log catalog
///  * plan/      — predicates, logical operators, plans, estimator
///  * views/     — opportunistic views, per-store catalogs, rewriter
///  * verify/    — [Vnnn] plan/split/design verifiers (EXPLAIN VERIFY)
///  * hv/, dw/   — the two store simulators and their cost models
///  * transfer/  — the HV <-> DW movement pipeline
///  * optimizer/ — multistore split optimizer with what-if mode
///  * tuner/     — benefits, interactions, knapsacks, the MISO tuner
///  * workload/  — the evolutionary-analytics workload generator
///  * sim/       — end-to-end simulation of all system variants
///  * core/      — this facade

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/store_kind.h"
#include "common/thread_pool.h"
#include "common/env.h"
#include "common/units.h"
#include "core/explain.h"
#include "core/multistore_system.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "dw/dw_store.h"
#include "dw/resource_model.h"
#include "hv/hv_store.h"
#include "optimizer/dot.h"
#include "optimizer/explain.h"
#include "optimizer/multistore_optimizer.h"
#include "plan/builder.h"
#include "plan/printer.h"
#include "relation/catalog.h"
#include "sim/report_io.h"
#include "sim/simulator.h"
#include "transfer/transfer_model.h"
#include "tuner/baseline_tuners.h"
#include "tuner/miso_tuner.h"
#include "views/rewriter.h"
#include "workload/background.h"
#include "workload/evolutionary.h"

#endif  // MISO_CORE_MISO_H_
