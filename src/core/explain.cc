#include "core/explain.h"

#include <cstdio>

#include "dw/dw_store.h"
#include "hv/hv_store.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "optimizer/explain.h"
#include "optimizer/multistore_optimizer.h"
#include "plan/node_factory.h"
#include "transfer/transfer_model.h"
#include "verify/design_verifier.h"
#include "verify/error_codes.h"
#include "verify/plan_verifier.h"

namespace miso::core {

namespace {

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

VerifierVerdict MakeVerdict(const char* check, const Status& status) {
  VerifierVerdict verdict;
  verdict.check = check;
  verdict.ok = status.ok();
  verdict.message = status.ok() ? "" : status.message();
  const std::optional<verify::VerifyCode> code =
      verify::ExtractVerifyCode(status);
  verdict.code = code.has_value()
                     ? std::string(verify::VerifyCodeToken(*code))
                     : std::string("V???");
  return verdict;
}

}  // namespace

bool ExplainReport::AllVerified() const {
  if (!verify_ran) return false;
  for (const VerifierVerdict& verdict : verdicts) {
    if (!verdict.ok) return false;
  }
  return true;
}

std::string ExplainReport::ToString() const {
  std::string out = optimizer::ExplainMultistorePlan(plan);
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "anatomy: HV %.3g s | dump %.3g s | transfer %.3g s | "
                "load %.3g s | DW %.3g s | total %.3g s\n",
                anatomy.hv_exec_s, anatomy.dump_s, anatomy.transfer_s,
                anatomy.load_s, anatomy.dw_exec_s, anatomy.Total());
  out += buf;
  if (verify_ran) {
    for (const VerifierVerdict& verdict : verdicts) {
      out += "verify ";
      out += verdict.check;
      out += ": ";
      out += verdict.ok ? "OK" : "FAIL";
      out += " [";
      out += verdict.code;
      out += "]";
      if (!verdict.ok) {
        out += " ";
        out += verdict.message;
      }
      out += '\n';
    }
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  std::string out = "{\"query\":";
  AppendJsonString(out, plan.executed.query_name());
  out += ",\"hv_only\":";
  out += plan.HvOnly() ? "true" : "false";
  out += ",\"fully_dw\":";
  out += plan.FullyDw() ? "true" : "false";
  out += ",\"dw_ops\":" + std::to_string(plan.dw_side.size());
  out += ",\"cut_inputs\":" + std::to_string(plan.cut_inputs.size());
  out += ",\"dw_fraction\":";
  AppendDouble(out, plan.DwOperatorFraction());
  out += ",\"transferred_bytes\":" + std::to_string(plan.transferred_bytes);
  out += ",\"anatomy\":{\"hv_exec_s\":";
  AppendDouble(out, anatomy.hv_exec_s);
  out += ",\"dump_s\":";
  AppendDouble(out, anatomy.dump_s);
  out += ",\"transfer_s\":";
  AppendDouble(out, anatomy.transfer_s);
  out += ",\"load_s\":";
  AppendDouble(out, anatomy.load_s);
  out += ",\"dw_exec_s\":";
  AppendDouble(out, anatomy.dw_exec_s);
  out += ",\"total_s\":";
  AppendDouble(out, anatomy.Total());
  out += "},\"verify_ran\":";
  out += verify_ran ? "true" : "false";
  out += ",\"verified\":";
  out += AllVerified() ? "true" : "false";
  out += ",\"verdicts\":[";
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"check\":";
    AppendJsonString(out, verdicts[i].check);
    out += ",\"code\":";
    AppendJsonString(out, verdicts[i].code);
    out += ",\"ok\":";
    out += verdicts[i].ok ? "true" : "false";
    if (!verdicts[i].ok) {
      out += ",\"message\":";
      AppendJsonString(out, verdicts[i].message);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

Result<ExplainReport> ExplainQuery(const relation::Catalog& catalog,
                                   const sim::SimConfig& config,
                                   const plan::Plan& query,
                                   const views::ViewCatalog& dw_views,
                                   const views::ViewCatalog& hv_views,
                                   bool run_verifiers) {
  plan::NodeFactory factory(&catalog);
  hv::HvStore hv_store(config.hv, config.hv_storage_budget);
  dw::DwStore dw_store(config.dw, config.dw_storage_budget);
  transfer::TransferModel mover(config.transfer);
  optimizer::MultistoreOptimizer opt(&factory, &hv_store.cost_model(),
                                     &dw_store.cost_model(), &mover);

  ExplainReport report;
  MISO_ASSIGN_OR_RETURN(report.plan, opt.Optimize(query, dw_views, hv_views));

  const transfer::TransferBreakdown tb =
      mover.WorkingSetTransfer(report.plan.transferred_bytes);
  report.anatomy.hv_exec_s = report.plan.cost.hv_exec_s;
  report.anatomy.dump_s = tb.dump_s;
  report.anatomy.transfer_s = tb.network_s;
  report.anatomy.load_s = tb.load_s;
  report.anatomy.dw_exec_s = report.plan.cost.dw_exec_s;

  if (run_verifiers) {
    report.verify_ran = true;
    // EXPLAIN VERIFY runs the battery unconditionally — this is the
    // always-on promotion of the debug-gate verifiers. Failures become
    // verdicts, not errors: the caller asked to *see* the evidence.
    report.verdicts.push_back(
        MakeVerdict("query_graph", verify::VerifyPlan(query)));
    optimizer::SplitCandidate split;
    split.dw_side = report.plan.dw_side;
    split.cut_inputs = report.plan.cut_inputs;
    report.verdicts.push_back(MakeVerdict(
        "split_shape",
        verify::VerifySplit(report.plan.executed.root(), split)));
    verify::PlanVerifierOptions options;
    options.hv_views = &hv_views;
    options.dw_views = &dw_views;
    report.verdicts.push_back(MakeVerdict(
        "multistore_plan",
        verify::VerifyMultistorePlan(report.plan, options)));
    // Design-level invariants of the catalogs the plan was optimized
    // against: budgets respected, Vh ∩ Vd = ∅, byte accounting intact.
    // This is how a corrupted design surfaces in EXPLAIN VERIFY (e.g.
    // V203 for a view placed in both stores).
    verify::DesignBudgets budgets;
    budgets.hv_storage = config.hv_storage_budget;
    budgets.dw_storage = config.dw_storage_budget;
    budgets.transfer = config.transfer_budget;
    report.verdicts.push_back(MakeVerdict(
        "design_budgets",
        verify::VerifyDesign(hv_views, dw_views, budgets)));
  }

  if (obs::TraceOn()) {
    int64_t failed = 0;
    for (const VerifierVerdict& verdict : report.verdicts) {
      if (!verdict.ok) ++failed;
    }
    obs::Emit(obs::TraceEvent(obs::names::kEvExplainVerify)
                  .Str("query", query.query_name())
                  .Bool("hv_only", report.plan.HvOnly())
                  .Int("dw_ops", static_cast<int64_t>(report.plan.dw_side.size()))
                  .Double("total_s", report.anatomy.Total())
                  .Bool("verify_ran", report.verify_ran)
                  .Int("verdicts", static_cast<int64_t>(report.verdicts.size()))
                  .Int("failed", failed));
  }
  return report;
}

}  // namespace miso::core
