#include "core/multistore_system.h"

#include "server/replay.h"

namespace miso {

MultistoreSystem::MultistoreSystem(const MisoConfig& config)
    : config_(config),
      catalog_(relation::MakePaperCatalog(config.catalog_scale)) {}

Result<sim::RunReport> MultistoreSystem::Execute(
    const std::vector<workload::WorkloadQuery>& queries) const {
  sim::MultistoreSimulator simulator(&catalog_, config_.sim);
  return simulator.Run(queries);
}

Result<sim::RunReport> MultistoreSystem::Serve(
    const server::ServerConfig& server_config,
    const std::vector<workload::WorkloadQuery>& queries) const {
  server::ServerConfig cfg = server_config;
  cfg.sim = config_.sim;
  return server::ReplayWorkload(&catalog_, cfg, queries);
}

Result<sim::RunReport> MultistoreSystem::ServePaperWorkload(
    const server::ServerConfig& server_config, uint64_t workload_seed) const {
  server::ServerConfig cfg = server_config;
  cfg.sim = config_.sim;
  return server::ReplayPaperWorkload(&catalog_, cfg, workload_seed);
}

Result<std::vector<sim::RunReport>> MultistoreSystem::SweepSeeds(
    const std::vector<uint64_t>& seeds) const {
  return sim::RunSeedSweep(&catalog_, config_.sim, seeds);
}

Result<core::ExplainReport> MultistoreSystem::Explain(
    const plan::Plan& query) const {
  const views::ViewCatalog empty_dw(0);
  const views::ViewCatalog empty_hv(0);
  return Explain(query, empty_dw, empty_hv);
}

Result<core::ExplainReport> MultistoreSystem::Explain(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views) const {
  return core::ExplainQuery(catalog_, config_.sim, query, dw_views, hv_views,
                            /*run_verifiers=*/false);
}

Result<core::ExplainReport> MultistoreSystem::ExplainVerify(
    const plan::Plan& query) const {
  const views::ViewCatalog empty_dw(0);
  const views::ViewCatalog empty_hv(0);
  return ExplainVerify(query, empty_dw, empty_hv);
}

Result<core::ExplainReport> MultistoreSystem::ExplainVerify(
    const plan::Plan& query, const views::ViewCatalog& dw_views,
    const views::ViewCatalog& hv_views) const {
  return core::ExplainQuery(catalog_, config_.sim, query, dw_views, hv_views,
                            /*run_verifiers=*/true);
}

Result<sim::RunReport> MultistoreSystem::ExecutePlans(
    const std::vector<plan::Plan>& plans) const {
  std::vector<workload::WorkloadQuery> queries;
  queries.reserve(plans.size());
  for (const plan::Plan& p : plans) {
    workload::WorkloadQuery q;
    q.plan = p;
    queries.push_back(std::move(q));
  }
  return Execute(queries);
}

}  // namespace miso
