#ifndef MISO_CORE_MULTISTORE_SYSTEM_H_
#define MISO_CORE_MULTISTORE_SYSTEM_H_

#include <vector>

#include "common/result.h"
#include "core/explain.h"
#include "relation/catalog.h"
#include "server/miso_server.h"
#include "sim/simulator.h"
#include "workload/evolutionary.h"

namespace miso {

/// Top-level configuration of a multistore system instance.
struct MisoConfig {
  /// Dataset catalog scale relative to the paper's 2 TB of logs (1.0 =
  /// paper scale; tests use much smaller scales).
  double catalog_scale = 1.0;
  sim::SimConfig sim;
};

/// Public facade over the library: a two-store (HV + DW) system processing
/// a stream of analytical queries over raw logs, with the physical design
/// of both stores tuned per the configured system variant (MS-MISO by
/// default).
///
/// Typical use:
///
///   MisoConfig config;
///   config.sim.variant = sim::SystemVariant::kMsMiso;
///   MultistoreSystem system(config);
///   auto workload = workload::EvolutionaryWorkload::Generate(
///       &system.catalog(), {});
///   auto report = system.Execute(workload->queries());
///   std::cout << report->Summary() << "\n";
class MultistoreSystem {
 public:
  explicit MultistoreSystem(const MisoConfig& config);

  const relation::Catalog& catalog() const { return catalog_; }
  const MisoConfig& config() const { return config_; }

  /// Runs a query stream through the configured system variant.
  Result<sim::RunReport> Execute(
      const std::vector<workload::WorkloadQuery>& queries) const;

  /// Convenience overload for bare plans.
  Result<sim::RunReport> ExecutePlans(
      const std::vector<plan::Plan>& plans) const;

  /// Runs a query stream through the online multistore server instead of
  /// the batch simulator: sessions are admitted in order through a
  /// bounded queue, waves of them plan/execute concurrently, and
  /// reorganizations run on a background thread (DESIGN.md §14).
  /// `server_config.sim` is taken from this system's configuration; the
  /// caller sets only the server-specific knobs (wave size, online
  /// reorganization, admission capacity, epoch observer, and the
  /// serving-path throughput switches: `plan_cache` /
  /// `plan_cache_bytes` for the design-epoch plan cache and
  /// `pipeline_waves` for speculative next-wave planning,
  /// DESIGN.md §14). Records come back in admission order and are
  /// byte-identical for any `MISO_THREADS` — and for any setting of the
  /// cache and pipelining knobs, which change only wall-clock speed.
  Result<sim::RunReport> Serve(
      const server::ServerConfig& server_config,
      const std::vector<workload::WorkloadQuery>& queries) const;

  /// Generates the paper workload and serves it online (the server-side
  /// counterpart of `sim::RunPaperWorkload`).
  Result<sim::RunReport> ServePaperWorkload(
      const server::ServerConfig& server_config,
      uint64_t workload_seed = 42) const;

  /// Generates the paper workload for each seed and simulates every one
  /// under this system's configuration, fanning the seeds out over
  /// `config.sim.threads` workers (0 = the `MISO_THREADS` default).
  /// Reports come back in seed order and are bit-identical to serial
  /// per-seed execution for any thread count.
  Result<std::vector<sim::RunReport>> SweepSeeds(
      const std::vector<uint64_t>& seeds) const;

  /// EXPLAIN: the multistore plan the optimizer would choose for `query`
  /// against fresh (empty) view catalogs, with its five-part cost anatomy
  /// (HV / dump / transfer / load / DW — paper Fig. 3) as one structured
  /// record. The overload explains against a concrete design.
  Result<core::ExplainReport> Explain(const plan::Plan& query) const;
  Result<core::ExplainReport> Explain(const plan::Plan& query,
                                      const views::ViewCatalog& dw_views,
                                      const views::ViewCatalog& hv_views) const;

  /// EXPLAIN VERIFY: `Explain` plus the full [Vnnn] verifier battery
  /// (query graph, split shape, costed multistore plan), run
  /// unconditionally — not gated on `MISO_VERIFY` — with each pass's
  /// verdict embedded in the report (see docs/TELEMETRY.md).
  Result<core::ExplainReport> ExplainVerify(const plan::Plan& query) const;
  Result<core::ExplainReport> ExplainVerify(
      const plan::Plan& query, const views::ViewCatalog& dw_views,
      const views::ViewCatalog& hv_views) const;

  /// A builder bound to this system's catalog, for composing ad-hoc
  /// queries against the log datasets.
  plan::PlanBuilder MakePlanBuilder() const {
    return plan::PlanBuilder(&catalog_);
  }

 private:
  MisoConfig config_;
  relation::Catalog catalog_;
};

}  // namespace miso

#endif  // MISO_CORE_MULTISTORE_SYSTEM_H_
