#include "verify/verify_gate.h"

#include <atomic>
#include <cstdlib>

namespace miso::verify {

namespace {

bool DefaultEnabled() {
  if (const char* env = std::getenv("MISO_VERIFY")) {
    return !(env[0] == '0' && env[1] == '\0');
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

std::atomic<bool>& State() {
  static std::atomic<bool> state{DefaultEnabled()};
  return state;
}

}  // namespace

bool Enabled() { return State().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  State().store(enabled, std::memory_order_relaxed);
}

ScopedVerification::ScopedVerification(bool enabled) : previous_(Enabled()) {
  SetEnabled(enabled);
}

ScopedVerification::~ScopedVerification() { SetEnabled(previous_); }

}  // namespace miso::verify
