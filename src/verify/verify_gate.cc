#include "verify/verify_gate.h"

#include <atomic>

#include "common/env.h"

namespace miso::verify {

namespace {

bool DefaultEnabled() {
  // Strict parsing, consistent with MISO_THREADS / MISO_FAULT_*: a set
  // MISO_VERIFY must be exactly "0" or "1"; garbage is a configuration
  // error (exit 2), never a silent fallback to the build-type default.
#ifndef NDEBUG
  const bool fallback = true;
#else
  const bool fallback = false;
#endif
  return EnvFlag("MISO_VERIFY", fallback);
}

std::atomic<bool>& State() {
  static std::atomic<bool> state{DefaultEnabled()};
  return state;
}

}  // namespace

bool Enabled() { return State().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  State().store(enabled, std::memory_order_relaxed);
}

ScopedVerification::ScopedVerification(bool enabled) : previous_(Enabled()) {
  SetEnabled(enabled);
}

ScopedVerification::~ScopedVerification() { SetEnabled(previous_); }

}  // namespace miso::verify
