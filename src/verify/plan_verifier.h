#ifndef MISO_VERIFY_PLAN_VERIFIER_H_
#define MISO_VERIFY_PLAN_VERIFIER_H_

#include "optimizer/multistore_plan.h"
#include "optimizer/split_enumerator.h"
#include "plan/plan.h"
#include "verify/error_codes.h"
#include "views/view_catalog.h"

namespace miso::verify {

/// Options for the plan verification passes. The catalogs are optional:
/// when provided, every ViewScan must resolve (by id and signature) in the
/// catalog of the store it claims to reside in.
struct PlanVerifierOptions {
  const views::ViewCatalog* hv_views = nullptr;
  const views::ViewCatalog* dw_views = nullptr;
  /// Safety cap on distinct operator nodes (guards runaway graphs).
  int max_nodes = 1'000'000;
};

/// Static structural analysis of one operator graph (paper §3 invariants):
///
///  * the graph is a DAG (structural sharing allowed, cycles rejected);
///  * every operator has the arity of its kind (leaves 0, Join 2, rest 1);
///  * schema consistency: Filter/Project/Aggregate/Join only reference
///    fields present in their input schemas, Extract applies to a raw
///    Scan, output stats are non-negative;
///  * ViewScan references resolve in the ViewCatalog of their store (when
///    catalogs are supplied).
///
/// Returns OK or the first violation as a Status whose message carries a
/// stable "[Vnnn]" code (see error_codes.h) plus the offending node.
Status VerifyNodeGraph(const plan::NodePtr& root,
                       const PlanVerifierOptions& options = {});

/// `VerifyNodeGraph` over a Plan; empty plans are rejected (V100).
Status VerifyPlan(const plan::Plan& plan,
                  const PlanVerifierOptions& options = {});

/// Verifies one split of `root` (paper §3.1): the DW side must be
/// upward-closed — data moves monotonically HV -> DW, never back — and
/// composed of DW-executable operators; store-resident ViewScans must land
/// on their own store's side; `cut_inputs` must be exactly the HV-side
/// children of DW-side operators (the transferred working sets). An empty
/// DW side (HV-only execution) must have no cut inputs.
Status VerifySplit(const plan::NodePtr& root,
                   const optimizer::SplitCandidate& split,
                   const PlanVerifierOptions& options = {});

/// Full verification of a costed multistore plan: graph checks on the
/// executed plan, split checks on (dw_side, cut_inputs), and consistency
/// of `transferred_bytes` with the cut inputs' estimated sizes.
Status VerifyMultistorePlan(const optimizer::MultistorePlan& ms,
                            const PlanVerifierOptions& options = {});

}  // namespace miso::verify

#endif  // MISO_VERIFY_PLAN_VERIFIER_H_
