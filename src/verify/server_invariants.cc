#include "verify/server_invariants.h"

#include <string>

#include "verify/error_codes.h"

namespace miso::verify {

namespace {

const char* StateName(int state) {
  switch (state) {
    case 0:
      return "closed";
    case 1:
      return "open";
    case 2:
      return "half-open";
    default:
      return "invalid";
  }
}

}  // namespace

Status VerifyBreakerTransition(int from, int to) {
  const bool legal = (from == 0 && to == 1) || (from == 1 && to == 2) ||
                     (from == 2 && to == 0) || (from == 2 && to == 1);
  if (legal) return Status::OK();
  return MakeVerifyError(
      VerifyCode::kBreakerIllegalTransition,
      "breaker transition " + std::string(StateName(from)) + "(" +
          std::to_string(from) + ") -> " + StateName(to) + "(" +
          std::to_string(to) + ") is not a legal edge of the " +
          "closed->open->half-open machine");
}

Status VerifyShedAccounting(int admitted, int completed, int shed,
                            int failed) {
  if (admitted >= 0 && completed >= 0 && shed >= 0 && failed >= 0 &&
      admitted == completed + shed + failed) {
    return Status::OK();
  }
  return MakeVerifyError(
      VerifyCode::kShedAccountingDrift,
      "admitted=" + std::to_string(admitted) + " != completed=" +
          std::to_string(completed) + " + shed=" + std::to_string(shed) +
          " + failed=" + std::to_string(failed));
}

}  // namespace miso::verify
