#ifndef MISO_VERIFY_DESIGN_VERIFIER_H_
#define MISO_VERIFY_DESIGN_VERIFIER_H_

#include <set>
#include <vector>

#include "common/units.h"
#include "tuner/reorg_journal.h"
#include "tuner/reorg_plan.h"
#include "verify/error_codes.h"
#include "views/view_catalog.h"

namespace miso::verify {

/// Budget envelope of a multistore design (paper §4.1: Bh, Bd, Bt).
struct DesignBudgets {
  Bytes hv_storage = 0;
  Bytes dw_storage = 0;
  Bytes transfer = 0;
  /// Knapsack discretization d (MisoTunerConfig::discretization). The
  /// packing guarantees budgets in ceil-units of d, so the verifier checks
  /// ceil(bytes/d) <= ceil(budget/d) — byte-exact when d <= 1 or when the
  /// budget is a multiple of d.
  Bytes discretization = 1;
};

/// Verifies a post-reorganization multistore design (paper §4.1):
///
///  * each store's view bytes fit its budget (Bh / Bd, in ceil-units of
///    the discretization);
///  * no view id is placed in both stores (Vh ∩ Vd = ∅);
///  * each catalog's `used_bytes` accounting equals the sum of its member
///    view sizes.
///
/// Note: between reorganizations HV deliberately admits views over budget
/// (§3.1 "less tightly managed"); call this only on tuner output / right
/// after a reorganization has been applied.
Status VerifyDesign(const views::ViewCatalog& hv, const views::ViewCatalog& dw,
                    const DesignBudgets& budgets);

/// Verifies one tuner-produced reorganization against the pre-reorg
/// catalogs: every movement/drop references a view present in its source
/// store, no view appears in two lists, total moved bytes fit the
/// transfer budget Bt, and the post-reorg design (simulated, not applied)
/// passes `VerifyDesign`.
Status VerifyReorgPlan(const tuner::ReorgPlan& plan,
                       const views::ViewCatalog& hv,
                       const views::ViewCatalog& dw,
                       const DesignBudgets& budgets);

/// Merged-item consistency from sparsification (§4.3): each group lists
/// the view ids of one merged knapsack item; all members must be placed in
/// the same store (or none of them placed).
Status VerifyAtomicPlacement(
    const std::vector<std::vector<views::ViewId>>& groups,
    const std::set<views::ViewId>& dw_ids,
    const std::set<views::ViewId>& hv_ids);

/// One decayed-benefit computation of the tuner's BenefitAnalyzer (§4.3):
/// the per-query benefits over the history window (oldest -> newest), the
/// decay weight the analyzer claims for each position, and the predicted
/// future benefit it summed them into.
struct BenefitLedger {
  /// Epoch length in queries; <= 0 means no epoching (all weights 1).
  int epoch_length = 0;
  /// Per-epoch decay factor (§5.1 default 0.6).
  double decay = 0.6;
  std::vector<double> per_query_benefit;
  std::vector<double> weights;
  /// The claimed Σ weights[i] * per_query_benefit[i].
  double predicted_total = 0.0;
};

/// Cross-checks a reorganization journal against the catalogs it was
/// applied to — the invariant behind crash-safe reorganization:
///
///  * every entry's `applied` flag agrees with where its view actually
///    resides (V209): an applied move put the view in its destination
///    store and removed it from the source; an unapplied one left it in
///    the source; drops analogously;
///  * when the journal has recovered from a crash, it must be in a
///    terminal state (V210): fully applied after a resume, fully
///    unapplied after a rollback — a mixed state means recovery stopped
///    halfway.
///
/// Uses only the journal's header-inline accessors, keeping miso_verify's
/// linking acyclic with miso_tuner.
Status VerifyJournalConsistency(const tuner::ReorgJournal& journal,
                                const views::ViewCatalog& hv,
                                const views::ViewCatalog& dw);

/// Cross-checks the decayed-benefit bookkeeping (all violations V208):
///
///  * one weight per benefit entry;
///  * every per-query benefit is finite and non-negative (benefits are
///    clamped savings — a negative entry means the base-cost cache and
///    the what-if probe disagreed on the same query);
///  * each weight equals decay^epoch_age recomputed independently from
///    (position, epoch_length), with the newest epoch at weight 1;
///  * the predicted total equals the weighted sum (small relative
///    tolerance; the verifier re-associates the sum differently).
Status VerifyBenefitLedger(const BenefitLedger& ledger);

}  // namespace miso::verify

#endif  // MISO_VERIFY_DESIGN_VERIFIER_H_
