#ifndef MISO_VERIFY_VERIFY_GATE_H_
#define MISO_VERIFY_VERIFY_GATE_H_

namespace miso::verify {

/// Process-wide switch for the verification passes (PlanVerifier /
/// DesignVerifier) that are wired into the split enumerator, the tuner,
/// and the simulator as debug-mode assertions.
///
/// Default: ON in debug builds (!NDEBUG), OFF in release builds. The
/// `MISO_VERIFY` environment variable overrides the default via the strict
/// common/env parser: exactly "0" disables, exactly "1" enables, and any
/// other value terminates the process with exit code 2 (consistent with
/// `MISO_THREADS` / `MISO_FAULT_*`). ctest sets MISO_VERIFY=1 for every
/// test, so the whole suite always runs with verification on regardless of
/// build type. `SetEnabled` overrides both.
bool Enabled();
void SetEnabled(bool enabled);

/// RAII toggle for tests: forces verification on (or off) for a scope and
/// restores the previous state on destruction.
class ScopedVerification {
 public:
  explicit ScopedVerification(bool enabled);
  ~ScopedVerification();

  ScopedVerification(const ScopedVerification&) = delete;
  ScopedVerification& operator=(const ScopedVerification&) = delete;

 private:
  bool previous_;
};

}  // namespace miso::verify

#endif  // MISO_VERIFY_VERIFY_GATE_H_
