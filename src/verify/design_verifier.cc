#include "verify/design_verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace miso::verify {

namespace {

/// ceil(bytes / unit) with unit <= 1 meaning byte granularity.
int64_t CeilUnits(Bytes bytes, Bytes unit) {
  if (unit <= 1) return bytes;
  return (bytes + unit - 1) / unit;
}

Status CheckStoreBudget(const char* store, Bytes used, Bytes budget,
                        Bytes unit, VerifyCode code) {
  if (CeilUnits(used, unit) > CeilUnits(budget, unit)) {
    return MakeVerifyError(
        code, std::string(store) + " design holds " + FormatBytes(used) +
                  " against a budget of " + FormatBytes(budget));
  }
  return Status::OK();
}

/// id -> size map of a catalog, also validating the catalog's own
/// used_bytes accounting.
Status Snapshot(const char* store, const views::ViewCatalog& catalog,
                std::map<views::ViewId, Bytes>* out) {
  Bytes total = 0;
  for (const views::View& view : catalog.AllViews()) {
    (*out)[view.id] = view.size_bytes;
    total += view.size_bytes;
  }
  if (total != catalog.used_bytes()) {
    return MakeVerifyError(
        VerifyCode::kDesignAccountingDrift,
        std::string(store) + " catalog reports used_bytes=" +
            FormatBytes(catalog.used_bytes()) + " but views sum to " +
            FormatBytes(total));
  }
  return Status::OK();
}

Status CheckDisjoint(const std::map<views::ViewId, Bytes>& hv,
                     const std::map<views::ViewId, Bytes>& dw) {
  for (const auto& [id, size] : dw) {
    (void)size;
    if (hv.count(id) > 0) {
      return MakeVerifyError(
          VerifyCode::kDesignDuplicatePlacement,
          "view id " + std::to_string(id) + " placed in both HV and DW");
    }
  }
  return Status::OK();
}

Bytes TotalBytes(const std::map<views::ViewId, Bytes>& store) {
  Bytes total = 0;
  for (const auto& [id, size] : store) {
    (void)id;
    total += size;
  }
  return total;
}

}  // namespace

Status VerifyDesign(const views::ViewCatalog& hv, const views::ViewCatalog& dw,
                    const DesignBudgets& budgets) {
  std::map<views::ViewId, Bytes> hv_views;
  std::map<views::ViewId, Bytes> dw_views;
  MISO_RETURN_IF_ERROR(Snapshot("HV", hv, &hv_views));
  MISO_RETURN_IF_ERROR(Snapshot("DW", dw, &dw_views));
  MISO_RETURN_IF_ERROR(CheckDisjoint(hv_views, dw_views));
  MISO_RETURN_IF_ERROR(CheckStoreBudget(
      "HV", TotalBytes(hv_views), budgets.hv_storage, budgets.discretization,
      VerifyCode::kDesignHvOverBudget));
  MISO_RETURN_IF_ERROR(CheckStoreBudget(
      "DW", TotalBytes(dw_views), budgets.dw_storage, budgets.discretization,
      VerifyCode::kDesignDwOverBudget));
  return Status::OK();
}

Status VerifyReorgPlan(const tuner::ReorgPlan& plan,
                       const views::ViewCatalog& hv,
                       const views::ViewCatalog& dw,
                       const DesignBudgets& budgets) {
  std::map<views::ViewId, Bytes> hv_views;
  std::map<views::ViewId, Bytes> dw_views;
  MISO_RETURN_IF_ERROR(Snapshot("HV", hv, &hv_views));
  MISO_RETURN_IF_ERROR(Snapshot("DW", dw, &dw_views));
  MISO_RETURN_IF_ERROR(CheckDisjoint(hv_views, dw_views));

  // Every id may be touched by at most one movement/drop list.
  std::set<views::ViewId> touched;
  auto touch = [&touched](views::ViewId id) -> Status {
    if (!touched.insert(id).second) {
      return MakeVerifyError(
          VerifyCode::kReorgDuplicateMove,
          "view id " + std::to_string(id) +
              " appears in more than one reorg movement list");
    }
    return Status::OK();
  };
  auto require_in = [](const std::map<views::ViewId, Bytes>& store,
                       const char* name, views::ViewId id) -> Status {
    if (store.count(id) == 0) {
      return MakeVerifyError(VerifyCode::kReorgUnknownView,
                             "reorg references view id " + std::to_string(id) +
                                 " not present in " + name);
    }
    return Status::OK();
  };

  Bytes moved = 0;
  for (const views::View& view : plan.move_to_dw) {
    MISO_RETURN_IF_ERROR(touch(view.id));
    MISO_RETURN_IF_ERROR(require_in(hv_views, "HV", view.id));
    hv_views.erase(view.id);
    dw_views[view.id] = view.size_bytes;
    moved += view.size_bytes;
  }
  for (const views::View& view : plan.move_to_hv) {
    MISO_RETURN_IF_ERROR(touch(view.id));
    MISO_RETURN_IF_ERROR(require_in(dw_views, "DW", view.id));
    dw_views.erase(view.id);
    hv_views[view.id] = view.size_bytes;
    moved += view.size_bytes;
  }
  for (views::ViewId id : plan.drop_from_hv) {
    MISO_RETURN_IF_ERROR(touch(id));
    MISO_RETURN_IF_ERROR(require_in(hv_views, "HV", id));
    hv_views.erase(id);
  }
  for (views::ViewId id : plan.drop_from_dw) {
    MISO_RETURN_IF_ERROR(touch(id));
    MISO_RETURN_IF_ERROR(require_in(dw_views, "DW", id));
    dw_views.erase(id);
  }

  if (CeilUnits(moved, budgets.discretization) >
      CeilUnits(budgets.transfer, budgets.discretization)) {
    return MakeVerifyError(
        VerifyCode::kDesignTransferOverBudget,
        "reorg moves " + FormatBytes(moved) +
            " against a transfer budget of " + FormatBytes(budgets.transfer));
  }

  // Post-reorg design: disjoint by construction of the maps above; check
  // both storage budgets on the simulated end state.
  MISO_RETURN_IF_ERROR(CheckDisjoint(hv_views, dw_views));
  MISO_RETURN_IF_ERROR(CheckStoreBudget(
      "HV", TotalBytes(hv_views), budgets.hv_storage, budgets.discretization,
      VerifyCode::kDesignHvOverBudget));
  MISO_RETURN_IF_ERROR(CheckStoreBudget(
      "DW", TotalBytes(dw_views), budgets.dw_storage, budgets.discretization,
      VerifyCode::kDesignDwOverBudget));
  return Status::OK();
}

Status VerifyBenefitLedger(const BenefitLedger& ledger) {
  const size_t n = ledger.per_query_benefit.size();
  if (ledger.weights.size() != n) {
    return MakeVerifyError(
        VerifyCode::kBenefitBookkeepingDrift,
        "benefit ledger holds " + std::to_string(n) + " benefits but " +
            std::to_string(ledger.weights.size()) + " weights");
  }

  // Re-derive each weight from scratch: position pos counts from the
  // oldest query, epoch age 0 is the newest epoch.
  double recomputed_total = 0;
  for (size_t pos = 0; pos < n; ++pos) {
    const double benefit = ledger.per_query_benefit[pos];
    if (!std::isfinite(benefit) || benefit < 0) {
      return MakeVerifyError(
          VerifyCode::kBenefitBookkeepingDrift,
          "per-query benefit at window position " + std::to_string(pos) +
              " is " + std::to_string(benefit) +
              " (must be finite and non-negative)");
    }
    double expected = 1.0;
    if (ledger.epoch_length > 0) {
      const int from_newest = static_cast<int>(n) - 1 - static_cast<int>(pos);
      const int epoch_age = from_newest / ledger.epoch_length;
      expected = std::pow(ledger.decay, epoch_age);
    }
    const double weight = ledger.weights[pos];
    if (!(std::fabs(weight - expected) <= 1e-12 * std::max(1.0, expected))) {
      return MakeVerifyError(
          VerifyCode::kBenefitBookkeepingDrift,
          "decay weight at window position " + std::to_string(pos) + " is " +
              std::to_string(weight) + ", expected decay^epoch_age = " +
              std::to_string(expected));
    }
    recomputed_total += weight * benefit;
  }

  const double scale =
      std::max({1.0, std::fabs(recomputed_total),
                std::fabs(ledger.predicted_total)});
  if (!std::isfinite(ledger.predicted_total) ||
      std::fabs(ledger.predicted_total - recomputed_total) > 1e-9 * scale) {
    return MakeVerifyError(
        VerifyCode::kBenefitBookkeepingDrift,
        "predicted benefit " + std::to_string(ledger.predicted_total) +
            " does not match the decayed per-query sum " +
            std::to_string(recomputed_total));
  }
  return Status::OK();
}

Status VerifyAtomicPlacement(
    const std::vector<std::vector<views::ViewId>>& groups,
    const std::set<views::ViewId>& dw_ids,
    const std::set<views::ViewId>& hv_ids) {
  for (const std::vector<views::ViewId>& group : groups) {
    int in_dw = 0;
    int in_hv = 0;
    for (views::ViewId id : group) {
      if (dw_ids.count(id) > 0) ++in_dw;
      if (hv_ids.count(id) > 0) ++in_hv;
    }
    const int members = static_cast<int>(group.size());
    const bool all_dw = in_dw == members && in_hv == 0;
    const bool all_hv = in_hv == members && in_dw == 0;
    const bool none = in_dw == 0 && in_hv == 0;
    if (!(all_dw || all_hv || none)) {
      return MakeVerifyError(
          VerifyCode::kMergedItemSplit,
          "merged item of " + std::to_string(members) +
              " views split across stores (" + std::to_string(in_dw) +
              " in DW, " + std::to_string(in_hv) + " in HV)");
    }
  }
  return Status::OK();
}

Status VerifyJournalConsistency(const tuner::ReorgJournal& journal,
                                const views::ViewCatalog& hv,
                                const views::ViewCatalog& dw) {
  using Kind = tuner::ReorgJournal::Kind;
  int applied = 0;
  int total = 0;
  for (const tuner::ReorgJournal::Entry& entry : journal.entries()) {
    ++total;
    applied += entry.applied ? 1 : 0;
    const views::ViewId id = entry.view.id;
    bool consistent = true;
    switch (entry.kind) {
      case Kind::kToDw:
        consistent = entry.applied ? (dw.Contains(id) && !hv.Contains(id))
                                   : (hv.Contains(id) && !dw.Contains(id));
        break;
      case Kind::kToHv:
        consistent = entry.applied ? (hv.Contains(id) && !dw.Contains(id))
                                   : (dw.Contains(id) && !hv.Contains(id));
        break;
      case Kind::kDropHv:
        consistent = entry.applied ? !hv.Contains(id) : hv.Contains(id);
        break;
      case Kind::kDropDw:
        consistent = entry.applied ? !dw.Contains(id) : dw.Contains(id);
        break;
    }
    if (!consistent) {
      return MakeVerifyError(
          VerifyCode::kReorgJournalInconsistent,
          "journal entry for view " + std::to_string(id) + " is marked " +
              (entry.applied ? "applied" : "unapplied") +
              " but the catalogs disagree");
    }
  }
  if (journal.recovered()) {
    const bool terminal =
        journal.recovery_policy() == RecoveryPolicy::kResume
            ? applied == total
            : applied == 0;
    if (!terminal) {
      return MakeVerifyError(
          VerifyCode::kReorgRecoveryIncomplete,
          std::string("journal recovered via ") +
              RecoveryPolicyName(journal.recovery_policy()) + " but " +
              std::to_string(applied) + " of " + std::to_string(total) +
              " steps are applied");
    }
  }
  return Status::OK();
}

}  // namespace miso::verify
