#ifndef MISO_VERIFY_ERROR_CODES_H_
#define MISO_VERIFY_ERROR_CODES_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace miso::verify {

/// Stable machine-readable codes for verifier diagnostics. Every Status a
/// verifier returns embeds one of these as a "[Vnnn]" prefix of its
/// message. Codes are append-only: a published code never changes meaning,
/// so tests and monitoring can match on them across versions.
enum class VerifyCode {
  kOk = 0,

  // -- PlanVerifier: plan structure (V10x). --
  kPlanEmpty = 100,             // V100: null root / empty plan
  kPlanCycle = 101,             // V101: operator graph is not a DAG
  kPlanArity = 102,             // V102: operator has wrong child count
  kPlanSchema = 103,            // V103: operator references a field absent
                                //       from its input schema, or carries
                                //       negative output stats
  kPlanViewUnresolved = 104,    // V104: ViewScan not resolvable in the
                                //       catalog of its store
  kPlanTooLarge = 105,          // V105: node count above the safety cap

  // -- PlanVerifier: split shape (V12x). --
  kSplitBackEdge = 120,         // V120: DW-side node feeds an HV-side node
                                //       (data must flow HV -> DW only, §3)
  kSplitNotDwExecutable = 121,  // V121: DW side holds an HV-only operator
  kSplitViewWrongSide = 122,    // V122: ViewScan assigned to the store it
                                //       does not reside in
  kSplitCutInconsistent = 123,  // V123: cut_inputs disagree with the HV/DW
                                //       frontier implied by dw_side
  kSplitForeignNode = 124,      // V124: split references a node outside
                                //       the plan
  kSplitDuplicateNode = 125,    // V125: node listed twice in dw_side
  kSplitBytesMismatch = 126,    // V126: transferred_bytes != sum of cut
                                //       input sizes

  // -- DesignVerifier (V2xx). --
  kDesignHvOverBudget = 200,        // V200: HV design exceeds Bh
  kDesignDwOverBudget = 201,        // V201: DW design exceeds Bd
  kDesignTransferOverBudget = 202,  // V202: reorg movement exceeds Bt
  kDesignDuplicatePlacement = 203,  // V203: view placed in both stores
  kDesignAccountingDrift = 204,     // V204: catalog used_bytes != sum of
                                    //       member view sizes
  kReorgUnknownView = 205,          // V205: movement references a view not
                                    //       present in its source store
  kReorgDuplicateMove = 206,        // V206: view appears in two movement /
                                    //       drop lists of one reorg plan
  kMergedItemSplit = 207,           // V207: members of one sparsified item
                                    //       placed in different stores
  kBenefitBookkeepingDrift = 208,   // V208: tuner's decayed-benefit ledger
                                    //       inconsistent (weights diverge
                                    //       from decay^epoch_age, negative /
                                    //       non-finite per-query benefit, or
                                    //       total != Σ weight·benefit)
  kReorgJournalInconsistent = 209,  // V209: a journal entry's applied flag
                                    //       disagrees with where its view
                                    //       actually resides in the catalogs
  kReorgRecoveryIncomplete = 210,   // V210: after crash recovery the journal
                                    //       is neither fully applied (resume)
                                    //       nor fully unapplied (rollback)
  kBreakerIllegalTransition = 211,  // V211: DW-health circuit breaker took
                                    //       an edge outside closed->open->
                                    //       half-open->{closed,open}
  kShedAccountingDrift = 212,       // V212: admitted sessions != completed
                                    //       + shed + failed at Finish
  kServerWaveStuck = 213,           // V213: watchdog saw N consecutive
                                    //       waves reduce without a single
                                    //       completed session
};

/// The stable token embedded in diagnostics, e.g. "V101".
std::string_view VerifyCodeToken(VerifyCode code);

/// Builds the canonical verifier Status: "[Vnnn] <detail>". Budget codes
/// map to StatusCode::kOutOfBudget, everything else to
/// StatusCode::kFailedPrecondition.
Status MakeVerifyError(VerifyCode code, std::string detail);

/// Parses the "[Vnnn]" token back out of a verifier Status message.
/// Returns kOk for OK statuses and nullopt for non-verifier statuses.
std::optional<VerifyCode> ExtractVerifyCode(const Status& status);

}  // namespace miso::verify

#endif  // MISO_VERIFY_ERROR_CODES_H_
