#ifndef MISO_VERIFY_SERVER_INVARIANTS_H_
#define MISO_VERIFY_SERVER_INVARIANTS_H_

#include "common/status.h"

namespace miso::verify {

/// Invariants of the online server's overload-protection machinery
/// (DESIGN.md §16). Both take plain ints so the verify layer stays free
/// of server-type dependencies (miso_server links miso_verify, not the
/// reverse).

/// V211: the DW-health circuit breaker may only take the edges
/// closed(0)->open(1), open(1)->half-open(2), half-open(2)->closed(0),
/// and half-open(2)->open(1). Self-loops and every other pair are
/// illegal; so are values outside the three states.
Status VerifyBreakerTransition(int from, int to);

/// V212: every admitted session must end in exactly one terminal bucket:
/// `admitted == completed + shed + failed`, all counts non-negative.
/// Checked at `MisoServer::Finish` on non-fatal runs with overload
/// protection enabled.
Status VerifyShedAccounting(int admitted, int completed, int shed,
                            int failed);

}  // namespace miso::verify

#endif  // MISO_VERIFY_SERVER_INVARIANTS_H_
