#include "verify/error_codes.h"

#include <cstdio>
#include <cstdlib>

namespace miso::verify {

std::string_view VerifyCodeToken(VerifyCode code) {
  switch (code) {
    case VerifyCode::kOk:
      return "V000";
    case VerifyCode::kPlanEmpty:
      return "V100";
    case VerifyCode::kPlanCycle:
      return "V101";
    case VerifyCode::kPlanArity:
      return "V102";
    case VerifyCode::kPlanSchema:
      return "V103";
    case VerifyCode::kPlanViewUnresolved:
      return "V104";
    case VerifyCode::kPlanTooLarge:
      return "V105";
    case VerifyCode::kSplitBackEdge:
      return "V120";
    case VerifyCode::kSplitNotDwExecutable:
      return "V121";
    case VerifyCode::kSplitViewWrongSide:
      return "V122";
    case VerifyCode::kSplitCutInconsistent:
      return "V123";
    case VerifyCode::kSplitForeignNode:
      return "V124";
    case VerifyCode::kSplitDuplicateNode:
      return "V125";
    case VerifyCode::kSplitBytesMismatch:
      return "V126";
    case VerifyCode::kDesignHvOverBudget:
      return "V200";
    case VerifyCode::kDesignDwOverBudget:
      return "V201";
    case VerifyCode::kDesignTransferOverBudget:
      return "V202";
    case VerifyCode::kDesignDuplicatePlacement:
      return "V203";
    case VerifyCode::kDesignAccountingDrift:
      return "V204";
    case VerifyCode::kReorgUnknownView:
      return "V205";
    case VerifyCode::kReorgDuplicateMove:
      return "V206";
    case VerifyCode::kMergedItemSplit:
      return "V207";
    case VerifyCode::kBenefitBookkeepingDrift:
      return "V208";
    case VerifyCode::kReorgJournalInconsistent:
      return "V209";
    case VerifyCode::kReorgRecoveryIncomplete:
      return "V210";
    case VerifyCode::kBreakerIllegalTransition:
      return "V211";
    case VerifyCode::kShedAccountingDrift:
      return "V212";
    case VerifyCode::kServerWaveStuck:
      return "V213";
  }
  return "V???";
}

Status MakeVerifyError(VerifyCode code, std::string detail) {
  std::string message = "[";
  message += VerifyCodeToken(code);
  message += "] ";
  message += detail;
  switch (code) {
    case VerifyCode::kDesignHvOverBudget:
    case VerifyCode::kDesignDwOverBudget:
    case VerifyCode::kDesignTransferOverBudget:
      return Status::OutOfBudget(std::move(message));
    default:
      return Status::FailedPrecondition(std::move(message));
  }
}

std::optional<VerifyCode> ExtractVerifyCode(const Status& status) {
  if (status.ok()) return VerifyCode::kOk;
  const std::string& msg = status.message();
  if (msg.size() < 6 || msg[0] != '[' || msg[1] != 'V' || msg[5] != ']') {
    return std::nullopt;
  }
  const int num = std::atoi(msg.substr(2, 3).c_str());
  const VerifyCode code = static_cast<VerifyCode>(num);
  // Round-trip through the token table to reject unknown numbers.
  if (VerifyCodeToken(code) == "V???") return std::nullopt;
  return code;
}

}  // namespace miso::verify
