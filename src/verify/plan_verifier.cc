#include "verify/plan_verifier.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace miso::verify {

using plan::NodePtr;
using plan::OperatorNode;
using plan::OpKind;

namespace {

/// Short diagnostic label naming the offending node.
std::string NodeLabel(const OperatorNode& node) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(sig=%016llx)",
                std::string(OpKindToString(node.kind())).c_str(),
                static_cast<unsigned long long>(node.signature()));
  return buf;
}

int ExpectedArity(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
    case OpKind::kViewScan:
      return 0;
    case OpKind::kJoin:
      return 2;
    case OpKind::kExtract:
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kAggregate:
    case OpKind::kUdf:
      return 1;
  }
  return -1;
}

/// Flattened view of the operator graph: distinct nodes in post-order plus
/// every parent->child edge (one entry per edge, so shared subtrees
/// contribute one edge per use).
struct GraphFacts {
  std::vector<const OperatorNode*> nodes;
  std::vector<std::pair<const OperatorNode*, const OperatorNode*>> edges;
};

/// DFS with white/gray/black coloring: collects nodes and edges, rejects
/// cycles and oversized graphs.
Status CollectGraph(const NodePtr& root, int max_nodes, GraphFacts* out) {
  enum class Color { kGray, kBlack };
  std::unordered_map<const OperatorNode*, Color> color;

  struct Frame {
    const OperatorNode* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  color[root.get()] = Color::kGray;
  stack.push_back({root.get(), 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child < frame.node->children().size()) {
      const NodePtr& child_ptr = frame.node->children()[frame.next_child++];
      if (child_ptr == nullptr) {
        return MakeVerifyError(
            VerifyCode::kPlanArity,
            "null child under " + NodeLabel(*frame.node));
      }
      const OperatorNode* child = child_ptr.get();
      out->edges.emplace_back(frame.node, child);
      auto it = color.find(child);
      if (it == color.end()) {
        if (static_cast<int>(color.size()) >= max_nodes) {
          return MakeVerifyError(VerifyCode::kPlanTooLarge,
                                 "operator graph exceeds " +
                                     std::to_string(max_nodes) + " nodes");
        }
        color[child] = Color::kGray;
        stack.push_back({child, 0});
      } else if (it->second == Color::kGray) {
        return MakeVerifyError(
            VerifyCode::kPlanCycle,
            "cycle through " + NodeLabel(*child) + " (edge from " +
                NodeLabel(*frame.node) + ")");
      }
      // Black child: shared subtree, already fully visited.
    } else {
      color[frame.node] = Color::kBlack;
      out->nodes.push_back(frame.node);
      stack.pop_back();
    }
  }
  return Status::OK();
}

Status VerifyNodeShape(const OperatorNode& node) {
  const int expected = ExpectedArity(node.kind());
  const int actual = static_cast<int>(node.children().size());
  if (expected < 0 || actual != expected) {
    return MakeVerifyError(
        VerifyCode::kPlanArity,
        NodeLabel(node) + " has " + std::to_string(actual) +
            " children, expected " + std::to_string(expected));
  }
  if (node.stats().rows < 0 || node.stats().bytes < 0) {
    return MakeVerifyError(VerifyCode::kPlanSchema,
                           NodeLabel(node) + " has negative output stats");
  }
  return Status::OK();
}

Status RequireField(const OperatorNode& node, const relation::Schema& schema,
                    const std::string& field, const char* what) {
  if (!schema.HasField(field)) {
    return MakeVerifyError(
        VerifyCode::kPlanSchema,
        NodeLabel(node) + " " + what + " references field '" + field +
            "' absent from its input schema");
  }
  return Status::OK();
}

Status VerifyNodeSchema(const OperatorNode& node) {
  switch (node.kind()) {
    case OpKind::kScan:
    case OpKind::kViewScan:
      return Status::OK();
    case OpKind::kExtract: {
      // SerDe extraction only makes sense directly over a raw-log scan.
      if (node.children()[0]->kind() != OpKind::kScan) {
        return MakeVerifyError(
            VerifyCode::kPlanSchema,
            NodeLabel(node) + " applies to " +
                NodeLabel(*node.children()[0]) + ", expected a raw Scan");
      }
      const relation::Schema& out = node.output_schema();
      for (const std::string& field : node.extract().fields) {
        MISO_RETURN_IF_ERROR(RequireField(node, out, field, "extract"));
      }
      return Status::OK();
    }
    case OpKind::kFilter: {
      const relation::Schema& in = node.children()[0]->output_schema();
      for (const plan::PredicateAtom& atom :
           node.filter().predicate.atoms()) {
        MISO_RETURN_IF_ERROR(RequireField(node, in, atom.field, "predicate"));
      }
      return Status::OK();
    }
    case OpKind::kProject: {
      const relation::Schema& in = node.children()[0]->output_schema();
      for (const std::string& field : node.project().fields) {
        MISO_RETURN_IF_ERROR(RequireField(node, in, field, "projection"));
      }
      return Status::OK();
    }
    case OpKind::kJoin: {
      const std::string& key = node.join().key;
      MISO_RETURN_IF_ERROR(RequireField(
          node, node.children()[0]->output_schema(), key, "join key (left)"));
      MISO_RETURN_IF_ERROR(RequireField(
          node, node.children()[1]->output_schema(), key,
          "join key (right)"));
      return Status::OK();
    }
    case OpKind::kAggregate: {
      const relation::Schema& in = node.children()[0]->output_schema();
      for (const std::string& key : node.aggregate().group_by) {
        MISO_RETURN_IF_ERROR(RequireField(node, in, key, "group-by"));
      }
      for (const plan::AggregateFn& fn : node.aggregate().aggregates) {
        if (fn.field == "*") continue;  // count(*)
        MISO_RETURN_IF_ERROR(RequireField(node, in, fn.field, "aggregate"));
      }
      return Status::OK();
    }
    case OpKind::kUdf:
      return Status::OK();
  }
  return Status::OK();
}

Status VerifyViewReference(const OperatorNode& node,
                           const PlanVerifierOptions& options) {
  if (node.kind() != OpKind::kViewScan) return Status::OK();
  const plan::ViewScanParams& params = node.view_scan();
  const views::ViewCatalog* catalog = params.store == StoreKind::kDw
                                          ? options.dw_views
                                          : options.hv_views;
  if (catalog == nullptr) return Status::OK();  // no catalog to check against
  if (!catalog->Contains(params.view_id)) {
    return MakeVerifyError(
        VerifyCode::kPlanViewUnresolved,
        NodeLabel(node) + " references view id " +
            std::to_string(params.view_id) + " not present in " +
            std::string(StoreKindToString(params.store)));
  }
  Result<views::View> view = catalog->Find(params.view_id);
  if (view.ok() && view->signature != params.view_signature) {
    return MakeVerifyError(
        VerifyCode::kPlanViewUnresolved,
        NodeLabel(node) + " signature mismatch for view id " +
            std::to_string(params.view_id));
  }
  return Status::OK();
}

}  // namespace

Status VerifyNodeGraph(const NodePtr& root,
                       const PlanVerifierOptions& options) {
  if (root == nullptr) {
    return MakeVerifyError(VerifyCode::kPlanEmpty, "plan has no root");
  }
  GraphFacts graph;
  MISO_RETURN_IF_ERROR(CollectGraph(root, options.max_nodes, &graph));
  for (const OperatorNode* node : graph.nodes) {
    MISO_RETURN_IF_ERROR(VerifyNodeShape(*node));
  }
  // Schema checks assume correct arities, hence the second pass.
  for (const OperatorNode* node : graph.nodes) {
    MISO_RETURN_IF_ERROR(VerifyNodeSchema(*node));
    MISO_RETURN_IF_ERROR(VerifyViewReference(*node, options));
  }
  return Status::OK();
}

Status VerifyPlan(const plan::Plan& plan, const PlanVerifierOptions& options) {
  if (plan.empty()) {
    return MakeVerifyError(VerifyCode::kPlanEmpty,
                           "plan '" + plan.query_name() + "' is empty");
  }
  return VerifyNodeGraph(plan.root(), options);
}

Status VerifySplit(const NodePtr& root, const optimizer::SplitCandidate& split,
                   const PlanVerifierOptions& options) {
  MISO_RETURN_IF_ERROR(VerifyNodeGraph(root, options));

  GraphFacts graph;
  MISO_RETURN_IF_ERROR(CollectGraph(root, options.max_nodes, &graph));
  std::unordered_set<const OperatorNode*> plan_nodes(graph.nodes.begin(),
                                                     graph.nodes.end());

  std::unordered_set<const OperatorNode*> dw;
  for (const NodePtr& node : split.dw_side) {
    if (node == nullptr || plan_nodes.count(node.get()) == 0) {
      return MakeVerifyError(VerifyCode::kSplitForeignNode,
                             "dw_side references a node outside the plan");
    }
    if (!dw.insert(node.get()).second) {
      return MakeVerifyError(
          VerifyCode::kSplitDuplicateNode,
          NodeLabel(*node) + " listed twice in dw_side");
    }
  }

  if (dw.empty()) {
    // HV-only execution: nothing crosses the stores.
    if (!split.cut_inputs.empty()) {
      return MakeVerifyError(
          VerifyCode::kSplitCutInconsistent,
          "HV-only split (empty dw_side) carries cut inputs");
    }
    return Status::OK();
  }

  // Monotonicity (§3.1): once an operator runs in DW every consumer above
  // it does too — equivalently, no DW node may feed an HV node.
  for (const auto& [parent, child] : graph.edges) {
    if (dw.count(child) > 0 && dw.count(parent) == 0) {
      return MakeVerifyError(
          VerifyCode::kSplitBackEdge,
          "DW -> HV back-edge: " + NodeLabel(*child) +
              " runs in DW but feeds " + NodeLabel(*parent) + " in HV");
    }
  }

  for (const OperatorNode* node : graph.nodes) {
    const bool in_dw = dw.count(node) > 0;
    if (in_dw && !node->dw_executable()) {
      return MakeVerifyError(
          VerifyCode::kSplitNotDwExecutable,
          NodeLabel(*node) + " on the DW side is not DW-executable");
    }
    if (node->kind() == OpKind::kViewScan) {
      const StoreKind store = node->view_scan().store;
      if (in_dw && store == StoreKind::kHv) {
        return MakeVerifyError(
            VerifyCode::kSplitViewWrongSide,
            NodeLabel(*node) + " is HV-resident but assigned to DW");
      }
      if (!in_dw && store == StoreKind::kDw) {
        return MakeVerifyError(
            VerifyCode::kSplitViewWrongSide,
            NodeLabel(*node) + " is DW-resident but assigned to HV");
      }
    }
  }

  // The cut must list exactly the HV-side children of DW-side operators,
  // once per crossing edge (a shared subtree transfers once per use).
  std::unordered_map<const OperatorNode*, int> expected_cuts;
  for (const auto& [parent, child] : graph.edges) {
    if (dw.count(parent) > 0 && dw.count(child) == 0) {
      ++expected_cuts[child];
    }
  }
  std::unordered_map<const OperatorNode*, int> actual_cuts;
  for (const NodePtr& node : split.cut_inputs) {
    if (node == nullptr || plan_nodes.count(node.get()) == 0) {
      return MakeVerifyError(VerifyCode::kSplitForeignNode,
                             "cut_inputs references a node outside the plan");
    }
    ++actual_cuts[node.get()];
  }
  for (const auto& [node, count] : expected_cuts) {
    auto it = actual_cuts.find(node);
    if (it == actual_cuts.end() || it->second != count) {
      return MakeVerifyError(
          VerifyCode::kSplitCutInconsistent,
          NodeLabel(*node) + " crosses the split " + std::to_string(count) +
              "x but appears " +
              std::to_string(it == actual_cuts.end() ? 0 : it->second) +
              "x in cut_inputs");
    }
  }
  for (const auto& [node, count] : actual_cuts) {
    (void)count;
    if (expected_cuts.count(node) == 0) {
      return MakeVerifyError(
          VerifyCode::kSplitCutInconsistent,
          NodeLabel(*node) + " listed as cut input but does not feed the "
                             "DW side from HV");
    }
  }
  return Status::OK();
}

Status VerifyMultistorePlan(const optimizer::MultistorePlan& ms,
                            const PlanVerifierOptions& options) {
  MISO_RETURN_IF_ERROR(VerifyPlan(ms.executed, options));
  optimizer::SplitCandidate split;
  split.dw_side = ms.dw_side;
  split.cut_inputs = ms.cut_inputs;
  MISO_RETURN_IF_ERROR(VerifySplit(ms.executed.root(), split, options));

  Bytes cut_bytes = 0;
  for (const NodePtr& cut : ms.cut_inputs) cut_bytes += cut->stats().bytes;
  if (ms.transferred_bytes != cut_bytes) {
    return MakeVerifyError(
        VerifyCode::kSplitBytesMismatch,
        "transferred_bytes=" + std::to_string(ms.transferred_bytes) +
            " but cut inputs sum to " + std::to_string(cut_bytes));
  }
  return Status::OK();
}

}  // namespace miso::verify
