#include "transfer/transfer_model.h"

#include "common/hash.h"

namespace miso::transfer {

namespace {

Seconds StageTime(Bytes bytes, double mbps) {
  return static_cast<double>(bytes) / (mbps * 1e6);
}

}  // namespace

TransferBreakdown TransferModel::WorkingSetTransfer(Bytes bytes) const {
  TransferBreakdown b;
  b.dump_s = StageTime(bytes, config_.dump_mbps);
  b.network_s = StageTime(bytes, config_.network_mbps);
  b.load_s = StageTime(bytes, config_.temp_load_mbps);
  return b;
}

TransferBreakdown TransferModel::ViewTransferToDw(Bytes bytes) const {
  TransferBreakdown b;
  b.dump_s = StageTime(bytes, config_.dump_mbps);
  b.network_s = StageTime(bytes, config_.network_mbps);
  b.load_s = StageTime(bytes, config_.perm_load_mbps);
  return b;
}

TransferBreakdown TransferModel::ViewTransferToHv(Bytes bytes) const {
  TransferBreakdown b;
  b.dump_s = StageTime(bytes, config_.dw_export_mbps);
  b.network_s = StageTime(bytes, config_.network_mbps);
  b.load_s = StageTime(bytes, config_.hdfs_write_mbps);
  return b;
}

FaultedTransfer TransferModel::RunFaulted(const TransferBreakdown& clean,
                                          bool load_is_dw,
                                          const fault::FaultInjector* injector,
                                          uint64_t entity,
                                          const RetryPolicy& retry) const {
  FaultedTransfer out;
  if (injector == nullptr) {
    out.ok = clean;
    return out;
  }
  const Seconds stream_s = clean.dump_s + clean.network_s;

  // Phase 1: the dump + network stream. A mid-stream interruption throws
  // away partial_fraction of the streamed bytes, split pro-rata between
  // the dump and network stages.
  const uint64_t stream_entity = HashCombine(entity, 1);
  const RetryStats stream = RunWithRetry(
      retry, [&](int attempt, Seconds* charged) {
        const fault::FaultDecision d = injector->Decide(
            fault::FaultSite::kTransfer, stream_entity, attempt);
        *charged = d.fail ? d.partial_fraction * stream_s : stream_s;
        return !d.fail;
      });
  out.injected_stream = stream.retries() + (stream.exhausted ? 1 : 0);
  out.injected += out.injected_stream;
  out.retries += stream.retries();
  out.backoff_s += stream.backoff_s;
  if (stream_s > 0) {
    out.wasted_dump_s += stream.wasted_s * (clean.dump_s / stream_s);
    out.wasted_rest_s += stream.wasted_s * (clean.network_s / stream_s);
  }
  if (stream.exhausted) {
    out.exhausted = true;
    return out;
  }

  // Phase 2: loading the staged bytes. Only the load is retried — the
  // staging file persists across load failures.
  const fault::FaultSite load_site =
      load_is_dw ? fault::FaultSite::kDwLoad : fault::FaultSite::kTransfer;
  const uint64_t load_entity = HashCombine(entity, 2);
  const RetryStats load = RunWithRetry(
      retry, [&](int attempt, Seconds* charged) {
        const fault::FaultDecision d =
            injector->Decide(load_site, load_entity, attempt);
        *charged = d.fail ? d.partial_fraction * clean.load_s : clean.load_s;
        return !d.fail;
      });
  out.injected_load = load.retries() + (load.exhausted ? 1 : 0);
  out.injected += out.injected_load;
  out.retries += load.retries();
  out.backoff_s += load.backoff_s;
  out.wasted_rest_s += load.wasted_s;
  if (load.exhausted) {
    out.exhausted = true;
    return out;
  }
  out.ok = clean;
  return out;
}

FaultedTransfer TransferModel::WorkingSetTransferFaulted(
    Bytes bytes, const fault::FaultInjector* injector, uint64_t entity,
    const RetryPolicy& retry) const {
  return RunFaulted(WorkingSetTransfer(bytes), /*load_is_dw=*/true, injector,
                    entity, retry);
}

FaultedTransfer TransferModel::ViewTransferToDwFaulted(
    Bytes bytes, const fault::FaultInjector* injector, uint64_t entity,
    const RetryPolicy& retry) const {
  return RunFaulted(ViewTransferToDw(bytes), /*load_is_dw=*/true, injector,
                    entity, retry);
}

FaultedTransfer TransferModel::ViewTransferToHvFaulted(
    Bytes bytes, const fault::FaultInjector* injector, uint64_t entity,
    const RetryPolicy& retry) const {
  return RunFaulted(ViewTransferToHv(bytes), /*load_is_dw=*/false, injector,
                    entity, retry);
}

}  // namespace miso::transfer
