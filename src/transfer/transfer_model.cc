#include "transfer/transfer_model.h"

namespace miso::transfer {

namespace {

Seconds StageTime(Bytes bytes, double mbps) {
  return static_cast<double>(bytes) / (mbps * 1e6);
}

}  // namespace

TransferBreakdown TransferModel::WorkingSetTransfer(Bytes bytes) const {
  TransferBreakdown b;
  b.dump_s = StageTime(bytes, config_.dump_mbps);
  b.network_s = StageTime(bytes, config_.network_mbps);
  b.load_s = StageTime(bytes, config_.temp_load_mbps);
  return b;
}

TransferBreakdown TransferModel::ViewTransferToDw(Bytes bytes) const {
  TransferBreakdown b;
  b.dump_s = StageTime(bytes, config_.dump_mbps);
  b.network_s = StageTime(bytes, config_.network_mbps);
  b.load_s = StageTime(bytes, config_.perm_load_mbps);
  return b;
}

TransferBreakdown TransferModel::ViewTransferToHv(Bytes bytes) const {
  TransferBreakdown b;
  b.dump_s = StageTime(bytes, config_.dw_export_mbps);
  b.network_s = StageTime(bytes, config_.network_mbps);
  b.load_s = StageTime(bytes, config_.hdfs_write_mbps);
  return b;
}

}  // namespace miso::transfer
