#ifndef MISO_TRANSFER_TRANSFER_MODEL_H_
#define MISO_TRANSFER_TRANSFER_MODEL_H_

#include <cstdint>

#include "common/retry.h"
#include "common/units.h"
#include "fault/fault.h"

namespace miso::transfer {

/// Cost constants of the HV <-> DW data-movement pipeline: dump to the
/// staging disk on the HV head node, push over the 1 GbE inter-cluster
/// link, and load on the DW side. Stages run serially (as in the paper's
/// testbed, where the head nodes stage through a directly-attached disk),
/// so each stage contributes bytes/rate.
///
/// Two load flavors mirror §3.1: working sets migrated *during query
/// execution* land in temporary DW table space (no indexes, discarded at
/// query end); views migrated *during reorganization* land in permanent
/// table space (with index builds — slower).
struct TransferConfig {
  /// HV-side dump of the working set / view to the staging disk.
  double dump_mbps = 100.0;

  /// Inter-cluster network (1 GbE with protocol overhead).
  double network_mbps = 110.0;

  /// DW bulk load into temporary table space.
  double temp_load_mbps = 40.0;

  /// DW bulk load into permanent table space, including recommended-index
  /// builds for the loaded view.
  double perm_load_mbps = 15.0;

  /// DW-side export of an evicted view (reorganization DW -> HV).
  double dw_export_mbps = 150.0;

  /// HDFS write of a view moved back to HV.
  double hdfs_write_mbps = 80.0;
};

/// Breakdown of one HV -> DW movement, matching Figure 3's bar segments.
struct TransferBreakdown {
  Seconds dump_s = 0;
  Seconds network_s = 0;
  Seconds load_s = 0;
  Seconds Total() const { return dump_s + network_s + load_s; }
};

/// A transfer executed under fault injection. `ok` is the clean breakdown
/// of the (eventually) successful attempt; the extra fields charge the
/// failed attempts and inter-attempt backoff. Interrupted streams bill
/// their partially-moved bytes: `wasted_dump_s` is the thrown-away HV-side
/// dump/export work, `wasted_rest_s` the thrown-away network + load work.
/// When `exhausted`, `ok` is zero and the transfer did not complete.
struct FaultedTransfer {
  TransferBreakdown ok;
  Seconds wasted_dump_s = 0;
  Seconds wasted_rest_s = 0;
  Seconds backoff_s = 0;
  int injected = 0;
  /// Of `injected`: failures of the dump+network stream (site kTransfer)
  /// vs. failures of the load stage (site kDwLoad / kTransfer).
  int injected_stream = 0;
  int injected_load = 0;
  int retries = 0;
  bool exhausted = false;

  Seconds TotalCharged() const {
    return ok.Total() + wasted_dump_s + wasted_rest_s + backoff_s;
  }
  fault::FaultAccounting Accounting() const {
    fault::FaultAccounting acc;
    acc.injected = injected;
    acc.retries = retries;
    acc.wasted_s = wasted_dump_s + wasted_rest_s;
    acc.backoff_s = backoff_s;
    acc.exhausted = exhausted;
    return acc;
  }
};

/// Cost model over a TransferConfig.
class TransferModel {
 public:
  explicit TransferModel(const TransferConfig& config) : config_(config) {}

  const TransferConfig& config() const { return config_; }

  /// Working-set migration at a query split point (temp table space).
  TransferBreakdown WorkingSetTransfer(Bytes bytes) const;

  /// Reorganization move of a view HV -> DW (permanent table space).
  TransferBreakdown ViewTransferToDw(Bytes bytes) const;

  /// Reorganization move of an evicted view DW -> HV.
  TransferBreakdown ViewTransferToHv(Bytes bytes) const;

  /// Fault-injected variants of the three movements above. Two retry
  /// scopes mirror the staged pipeline: the dump+network stream retries
  /// as a unit (site kTransfer — an interruption re-sends the stream and
  /// charges the partially-moved bytes), while the already-staged load
  /// retries alone (site kDwLoad for DW-bound loads, kTransfer for the
  /// HDFS write of an HV-bound move — the staging file survives a load
  /// failure, so dump/network work is never repeated for it). With a
  /// null `injector` these reduce exactly to the unfaulted methods.
  FaultedTransfer WorkingSetTransferFaulted(
      Bytes bytes, const fault::FaultInjector* injector, uint64_t entity,
      const RetryPolicy& retry) const;
  FaultedTransfer ViewTransferToDwFaulted(Bytes bytes,
                                          const fault::FaultInjector* injector,
                                          uint64_t entity,
                                          const RetryPolicy& retry) const;
  FaultedTransfer ViewTransferToHvFaulted(Bytes bytes,
                                          const fault::FaultInjector* injector,
                                          uint64_t entity,
                                          const RetryPolicy& retry) const;

 private:
  FaultedTransfer RunFaulted(const TransferBreakdown& clean, bool load_is_dw,
                             const fault::FaultInjector* injector,
                             uint64_t entity, const RetryPolicy& retry) const;

  TransferConfig config_;
};

}  // namespace miso::transfer

#endif  // MISO_TRANSFER_TRANSFER_MODEL_H_
