#ifndef MISO_TRANSFER_TRANSFER_MODEL_H_
#define MISO_TRANSFER_TRANSFER_MODEL_H_

#include "common/units.h"

namespace miso::transfer {

/// Cost constants of the HV <-> DW data-movement pipeline: dump to the
/// staging disk on the HV head node, push over the 1 GbE inter-cluster
/// link, and load on the DW side. Stages run serially (as in the paper's
/// testbed, where the head nodes stage through a directly-attached disk),
/// so each stage contributes bytes/rate.
///
/// Two load flavors mirror §3.1: working sets migrated *during query
/// execution* land in temporary DW table space (no indexes, discarded at
/// query end); views migrated *during reorganization* land in permanent
/// table space (with index builds — slower).
struct TransferConfig {
  /// HV-side dump of the working set / view to the staging disk.
  double dump_mbps = 100.0;

  /// Inter-cluster network (1 GbE with protocol overhead).
  double network_mbps = 110.0;

  /// DW bulk load into temporary table space.
  double temp_load_mbps = 40.0;

  /// DW bulk load into permanent table space, including recommended-index
  /// builds for the loaded view.
  double perm_load_mbps = 15.0;

  /// DW-side export of an evicted view (reorganization DW -> HV).
  double dw_export_mbps = 150.0;

  /// HDFS write of a view moved back to HV.
  double hdfs_write_mbps = 80.0;
};

/// Breakdown of one HV -> DW movement, matching Figure 3's bar segments.
struct TransferBreakdown {
  Seconds dump_s = 0;
  Seconds network_s = 0;
  Seconds load_s = 0;
  Seconds Total() const { return dump_s + network_s + load_s; }
};

/// Cost model over a TransferConfig.
class TransferModel {
 public:
  explicit TransferModel(const TransferConfig& config) : config_(config) {}

  const TransferConfig& config() const { return config_; }

  /// Working-set migration at a query split point (temp table space).
  TransferBreakdown WorkingSetTransfer(Bytes bytes) const;

  /// Reorganization move of a view HV -> DW (permanent table space).
  TransferBreakdown ViewTransferToDw(Bytes bytes) const;

  /// Reorganization move of an evicted view DW -> HV.
  TransferBreakdown ViewTransferToHv(Bytes bytes) const;

 private:
  TransferConfig config_;
};

}  // namespace miso::transfer

#endif  // MISO_TRANSFER_TRANSFER_MODEL_H_
