#include "datagen/record_generator.h"

#include <algorithm>

namespace miso::datagen {

namespace {

using relation::DataType;
using relation::Field;

/// Deterministic word pool for synthetic string fields.
constexpr const char* kWords[] = {
    "coffee", "espresso", "brunch", "launch",  "review",  "sunset",
    "market", "museum",   "park",   "concert", "stadium", "harbor",
};

std::string SyntheticString(const Field& field, int64_t id, Rng* rng) {
  std::string value = kWords[rng->Uniform(0, 11)];
  value += '_';
  value += field.name.substr(0, 3);
  value += std::to_string(id % std::max<int64_t>(1, field.distinct_values));
  // Pad toward the field's average width so synthetic volumes resemble the
  // catalog's statistics.
  while (static_cast<Bytes>(value.size()) + 2 < field.avg_width) {
    value += 'x';
  }
  return value;
}

}  // namespace

Result<RecordGenerator> RecordGenerator::Create(
    const relation::Catalog& catalog, const std::string& dataset,
    uint64_t seed) {
  MISO_ASSIGN_OR_RETURN(relation::LogDataset ds,
                        catalog.FindDataset(dataset));
  return RecordGenerator(std::move(ds), seed);
}

std::string RecordGenerator::NextRecord() {
  const int64_t id = next_id_++;
  std::string json = "{";
  bool first = true;
  for (const Field& field : dataset_.schema.fields()) {
    if (!first) json += ", ";
    first = false;
    json += '"';
    json += field.name;
    json += "\": ";
    switch (field.type) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        json += std::to_string(
            rng_.Uniform(1, std::max<int64_t>(1, field.distinct_values)));
        break;
      case DataType::kDouble:
        json += std::to_string(rng_.UniformReal(0.0, 100.0));
        break;
      case DataType::kBool:
        json += rng_.Bernoulli(0.5) ? "true" : "false";
        break;
      case DataType::kString:
        json += '"';
        json += SyntheticString(field, id, &rng_);
        json += '"';
        break;
    }
  }
  json += "}";
  return json;
}

std::vector<std::string> RecordGenerator::Records(int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) out.push_back(NextRecord());
  return out;
}

}  // namespace miso::datagen
