#ifndef MISO_DATAGEN_RECORD_GENERATOR_H_
#define MISO_DATAGEN_RECORD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relation/catalog.h"

namespace miso::datagen {

/// Synthesizes JSON log records matching a catalog dataset's schema and
/// field statistics. The tuning pipeline itself never touches record
/// contents (costs depend only on the statistical catalog), but the
/// example programs use this generator to show what the simulated logs
/// look like and to demonstrate the SerDe extraction the Extract operator
/// models.
class RecordGenerator {
 public:
  /// Binds to one dataset of `catalog`. Errors when the dataset is
  /// unknown.
  static Result<RecordGenerator> Create(const relation::Catalog& catalog,
                                        const std::string& dataset,
                                        uint64_t seed);

  /// Next synthetic record as a single-line JSON object.
  std::string NextRecord();

  /// Convenience: `n` records, one JSON object per line.
  std::vector<std::string> Records(int n);

  const relation::LogDataset& dataset() const { return dataset_; }

 private:
  RecordGenerator(relation::LogDataset dataset, uint64_t seed)
      : dataset_(std::move(dataset)), rng_(seed) {}

  relation::LogDataset dataset_;
  Rng rng_;
  int64_t next_id_ = 1;
};

}  // namespace miso::datagen

#endif  // MISO_DATAGEN_RECORD_GENERATOR_H_
