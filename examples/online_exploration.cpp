// Online exploration with the lower-level APIs: build ad-hoc queries with
// the plan builder, watch the optimizer pick split points against the
// current design, run the MISO tuner by hand, and see how the same query
// gets cheaper as the design adapts.
//
// This example drives the library the way an embedding application would:
// one query at a time, no pre-generated workload.
//
// Run:  ./build/examples/example_online_exploration

#include <cstdio>

#include "core/miso.h"

namespace {

using namespace miso;  // example code: keep the listing short

/// One exploration step of an analyst studying coffee-related check-ins.
Result<plan::Plan> CoffeeQuery(const plan::PlanBuilder& builder,
                               const std::string& name, int64_t since_day,
                               double since_sel) {
  using plan::CompareOp;
  auto tweets =
      builder.Scan("twitter")
          .Extract({"user_id", "ts", "topic", "text"})
          .Filter({plan::MakeAtom("topic", CompareOp::kLike, "coffee%",
                                  0.12),
                   plan::MakeAtom("ts", CompareOp::kGt,
                                  std::to_string(since_day), since_sel)});
  auto checkins =
      builder.Scan("foursquare")
          .Extract({"user_id", "ts", "checkin_loc", "category"})
          .Filter({plan::MakeAtom("category", CompareOp::kEq, "cafe",
                                  0.15)});
  plan::UdfParams scoring;
  scoring.name = "audience_score";
  scoring.size_factor = 0.3;
  scoring.cpu_factor = 2.0;
  scoring.dw_compatible = true;  // SQL-expressible
  return tweets.Join(checkins, "user_id")
      .Udf(scoring)
      .Aggregate({"category"}, {{"count", "*"}})
      .Build(name);
}

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);

  // Assemble the pieces by hand (what MultistoreSystem does internally).
  relation::Catalog catalog = relation::MakePaperCatalog();
  plan::NodeFactory factory(&catalog);
  plan::PlanBuilder builder(&catalog);
  hv::HvStore hv_store(hv::HvConfig{}, 4 * kTiB);
  dw::DwStore dw_store(dw::DwConfig{}, 400 * kGiB);
  transfer::TransferModel mover{transfer::TransferConfig{}};
  optimizer::MultistoreOptimizer optimizer(&factory, &hv_store.cost_model(),
                                           &dw_store.cost_model(), &mover);

  tuner::MisoTunerConfig tuner_config;
  tuner_config.hv_storage_budget = 4 * kTiB;
  tuner_config.dw_storage_budget = 400 * kGiB;
  tuner_config.transfer_budget = 10 * kGiB;
  tuner::MisoTuner miso(&optimizer, tuner_config);

  uint64_t next_view_id = 1;
  std::vector<plan::Plan> history;

  auto explore = [&](const plan::Plan& query) -> Result<Seconds> {
    MISO_ASSIGN_OR_RETURN(
        optimizer::MultistorePlan best,
        optimizer.Optimize(query, dw_store.catalog(), hv_store.catalog()));
    // Execute the HV side (harvesting by-product views).
    if (best.HvOnly()) {
      MISO_ASSIGN_OR_RETURN(
          hv::HvExecution exec,
          hv_store.Execute(best.executed.root(),
                           static_cast<int>(history.size()), 0,
                           &next_view_id, query.signature()));
      for (views::View& v : exec.produced_views) {
        MISO_RETURN_IF_ERROR(hv_store.catalog().AddUnchecked(std::move(v)));
      }
    } else {
      for (const plan::NodePtr& cut : best.cut_inputs) {
        if (cut->kind() == plan::OpKind::kScan ||
            cut->kind() == plan::OpKind::kViewScan) {
          continue;
        }
        MISO_ASSIGN_OR_RETURN(
            hv::HvExecution exec,
            hv_store.Execute(cut, static_cast<int>(history.size()), 0,
                             &next_view_id, query.signature()));
        for (views::View& v : exec.produced_views) {
          MISO_RETURN_IF_ERROR(
              hv_store.catalog().AddUnchecked(std::move(v)));
        }
      }
    }
    history.push_back(query);
    std::printf("%s", optimizer::ExplainMultistorePlan(best).c_str());
    return best.cost.Total();
  };

  std::printf("Exploration session (each step one ad-hoc query):\n");
  auto v1 = CoffeeQuery(builder, "coffee_v1", 15200, 0.5);
  if (!v1.ok()) return 1;
  (void)explore(*v1);

  // Reorganize: the tuner inspects the history and the harvested views.
  auto reorg = miso.Tune(hv_store.catalog(), dw_store.catalog(), history);
  if (!reorg.ok()) return 1;
  std::printf("  [reorganization] %s\n", reorg->Summary().c_str());
  (void)tuner::ApplyReorgPlan(*reorg, &hv_store.catalog(),
                              &dw_store.catalog());

  // The analyst narrows the time window (subsumable) and re-runs: the
  // optimizer now answers from the warehouse.
  auto v2 = CoffeeQuery(builder, "coffee_v2", 15320, 0.3);
  if (!v2.ok()) return 1;
  (void)explore(*v2);

  auto v3 = CoffeeQuery(builder, "coffee_v3", 15400, 0.2);
  if (!v3.ok()) return 1;
  (void)explore(*v3);

  std::printf(
      "\nDW design now holds %d views (%s of %s); HV holds %d views.\n",
      dw_store.catalog().size(),
      FormatBytes(dw_store.catalog().used_bytes()).c_str(),
      FormatBytes(dw_store.catalog().budget()).c_str(),
      hv_store.catalog().size());
  return 0;
}

}  // namespace

int main() { return RealMain(); }
