// Quickstart: build a multistore system, pose a few evolving analyst
// queries, and watch the MISO tuner move opportunistic views into the DW.
//
// Run:  ./build/examples/example_quickstart

#include <cstdio>

#include "core/miso.h"

namespace {

using miso::GiB;
using miso::MisoConfig;
using miso::MultistoreSystem;
using miso::Result;
using miso::kGiB;
using miso::kTiB;

int RealMain() {
  miso::Logger::SetThreshold(miso::LogLevel::kWarning);

  // A multistore system at paper scale: 2 TB of logs in HV, a 9-node DW.
  MisoConfig config;
  config.sim.variant = miso::sim::SystemVariant::kMsMiso;
  config.sim.hv_storage_budget = 4 * kTiB;     // Bh = 2x base data
  config.sim.dw_storage_budget = 400 * kGiB;   // Bd = 2x DW-relevant data
  config.sim.transfer_budget = 10 * kGiB;      // Bt per reorganization
  MultistoreSystem system(config);

  // The paper's evolutionary workload: 8 analysts, 4 query versions each.
  miso::workload::WorkloadConfig wl;
  Result<miso::workload::EvolutionaryWorkload> workload =
      miso::workload::EvolutionaryWorkload::Generate(&system.catalog(), wl);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Workload: %d queries. First analyst's base query:\n\n%s\n",
              workload->size(),
              miso::plan::PrintPlan(workload->queries()[0].plan).c_str());

  // EXPLAIN VERIFY: the chosen split plan, its five-part cost anatomy
  // (HV / dump / transfer / load / DW), and every [Vnnn] verifier verdict
  // as one structured record.
  Result<miso::core::ExplainReport> explained =
      system.ExplainVerify(workload->queries()[0].plan);
  if (!explained.ok()) {
    std::fprintf(stderr, "EXPLAIN VERIFY failed: %s\n",
                 explained.status().ToString().c_str());
    return 1;
  }
  std::printf("EXPLAIN VERIFY of the first query:\n\n%s\n",
              explained->ToString().c_str());
  std::printf("As one JSON record:\n%s\n\n", explained->ToJson().c_str());

  // Execute under MS-MISO and under plain HV-ONLY for comparison.
  Result<miso::sim::RunReport> miso_run = system.Execute(workload->queries());
  if (!miso_run.ok()) {
    std::fprintf(stderr, "MS-MISO run failed: %s\n",
                 miso_run.status().ToString().c_str());
    return 1;
  }

  MisoConfig hv_config = config;
  hv_config.sim.variant = miso::sim::SystemVariant::kHvOnly;
  MultistoreSystem hv_system(hv_config);
  Result<miso::sim::RunReport> hv_run = hv_system.Execute(workload->queries());
  if (!hv_run.ok()) {
    std::fprintf(stderr, "HV-ONLY run failed: %s\n",
                 hv_run.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n%s\n\n", hv_run->Summary().c_str(),
              miso_run->Summary().c_str());
  std::printf("MS-MISO speedup over HV-ONLY: %.2fx\n",
              hv_run->Tti() / miso_run->Tti());
  std::printf("Views moved to DW across %d reorganizations: %s\n",
              miso_run->reorg_count,
              miso::FormatBytes(miso_run->bytes_moved_to_dw).c_str());
  std::printf("Queries running mostly in DW: %d of %d\n",
              miso_run->DwMajorityQueries(),
              static_cast<int>(miso_run->queries.size()));
  return 0;
}

}  // namespace

int main() { return RealMain(); }
