// Capacity planning with the what-if machinery: how much DW view storage
// (Bd), HV view storage (Bh), and per-reorganization transfer budget (Bt)
// does this workload actually need? The example sweeps the three budgets
// independently and reports the TTI knee points — the §6 discussion of
// the Bt trade-off, turned into a runnable planning tool.
//
// Run:  ./build/examples/example_capacity_planning

#include <cstdio>
#include <vector>

#include "core/miso.h"

namespace {

using namespace miso;  // example code: keep the listing short

Seconds RunWith(const workload::EvolutionaryWorkload& workload,
                Bytes bh, Bytes bd, Bytes bt) {
  MisoConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  config.sim.hv_storage_budget = bh;
  config.sim.dw_storage_budget = bd;
  config.sim.transfer_budget = bt;
  MultistoreSystem system(config);
  auto report = system.Execute(workload.queries());
  return report.ok() ? report->Tti() : -1;
}

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);
  MultistoreSystem probe(MisoConfig{});
  auto workload = workload::EvolutionaryWorkload::Generate(
      &probe.catalog(), workload::WorkloadConfig{});
  if (!workload.ok()) return 1;

  const Bytes bh_default = 4 * kTiB;
  const Bytes bd_default = 400 * kGiB;
  const Bytes bt_default = 10 * kGiB;

  std::printf("Sweep 1: DW view storage budget Bd (Bh=4TiB, Bt=10GiB)\n");
  for (Bytes bd : std::vector<Bytes>{25 * kGiB, 50 * kGiB, 100 * kGiB,
                                     200 * kGiB, 400 * kGiB}) {
    std::printf("  Bd = %-10s TTI = %8.0f s\n", FormatBytes(bd).c_str(),
                RunWith(*workload, bh_default, bd, bt_default));
  }

  std::printf("\nSweep 2: HV view storage budget Bh (Bd=400GiB, Bt=10GiB)\n");
  for (Bytes bh : std::vector<Bytes>{256 * kGiB, 512 * kGiB, kTiB,
                                     2 * kTiB, 4 * kTiB}) {
    std::printf("  Bh = %-10s TTI = %8.0f s\n", FormatBytes(bh).c_str(),
                RunWith(*workload, bh, bd_default, bt_default));
  }

  std::printf(
      "\nSweep 3: transfer budget Bt per reorganization "
      "(Bh=4TiB, Bd=400GiB)\n");
  for (Bytes bt : std::vector<Bytes>{0, 2 * kGiB, 5 * kGiB, 10 * kGiB,
                                     20 * kGiB, 80 * kGiB}) {
    std::printf("  Bt = %-10s TTI = %8.0f s\n", FormatBytes(bt).c_str(),
                RunWith(*workload, bh_default, bd_default, bt));
  }

  std::printf(
      "\nReading the knees: HV storage pays for itself up to roughly the\n"
      "workload's working set; DW storage beyond the hot views adds "
      "little;\nand a small Bt already captures most of the benefit while "
      "keeping\neach reorganization's impact on the warehouse short "
      "(paper §6).\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
