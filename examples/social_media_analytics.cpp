// The paper's motivating scenario end-to-end: eight marketing analysts
// iteratively refine exploratory queries over 2 TB of social-media logs
// (tweets + check-ins + landmark reference data). The multistore system
// accelerates them with an existing parallel warehouse, tuning the
// placement of opportunistic views after every three queries.
//
// Run:  ./build/examples/example_social_media_analytics

#include <cstdio>
#include <string>

#include "core/miso.h"
#include "datagen/record_generator.h"

namespace {

using namespace miso;  // example code: keep the listing short

int RealMain() {
  Logger::SetThreshold(LogLevel::kWarning);

  MisoConfig config;
  config.sim.variant = sim::SystemVariant::kMsMiso;
  MultistoreSystem system(config);

  // Peek at the kind of raw data the analysts explore.
  std::printf("Sample raw log records (synthetic):\n");
  for (const char* dataset : {"twitter", "foursquare"}) {
    auto gen = datagen::RecordGenerator::Create(system.catalog(), dataset,
                                                2026);
    std::string record = gen->NextRecord();
    if (record.size() > 110) record = record.substr(0, 107) + "...";
    std::printf("  %-10s %s\n", dataset, record.c_str());
  }

  auto workload = workload::EvolutionaryWorkload::Generate(
      &system.catalog(), workload::WorkloadConfig{});
  if (!workload.ok()) return 1;

  auto report = system.Execute(workload->queries());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nPer-query trace (time in simulated seconds):\n");
  std::printf("%-7s %-18s %9s %6s %6s %6s %6s\n", "query", "mutation",
              "exec(s)", "HV%", "XFER%", "DW%", "views");
  for (const sim::QueryRecord& q : report->queries) {
    const workload::WorkloadQuery& wq =
        workload->queries()[static_cast<size_t>(q.index)];
    const Seconds total = q.ExecTime();
    auto pct = [total](Seconds part) {
      return total > 0 ? 100.0 * part / total : 0.0;
    };
    std::printf("%-7s %-18s %9.0f %5.0f%% %5.0f%% %5.0f%% %6d\n",
                q.name.c_str(),
                std::string(workload::MutationKindToString(wq.mutation))
                    .c_str(),
                total, pct(q.breakdown.hv_exec_s),
                pct(q.breakdown.dump_s + q.breakdown.transfer_load_s),
                pct(q.breakdown.dw_exec_s), q.views_used);
  }

  std::printf("\n%s\n", report->Summary().c_str());
  std::printf(
      "The first version of each analyst's query pays the full Hadoop "
      "price;\nonce the tuner has moved the right views into the "
      "warehouse, later\nversions run in seconds instead of hours.\n");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
